// Exporters for obs::Registry: structured JSON (tools/metrics_schema.json),
// the human phase-time tree, and Chrome trace_event JSON.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace lcsf::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

/// One node of the phase tree reconstructed from the '/'-joined timer
/// paths. std::map keeps child order canonical (alphabetical).
struct PhaseNode {
  TimerStat stat;
  std::map<std::string, PhaseNode> children;
};

PhaseNode build_phase_tree(const std::map<std::string, TimerStat>& timers) {
  PhaseNode root;
  for (const auto& [path, stat] : timers) {
    PhaseNode* node = &root;
    std::size_t begin = 0;
    while (begin <= path.size()) {
      const std::size_t slash = path.find('/', begin);
      const std::string seg =
          path.substr(begin, slash == std::string::npos ? std::string::npos
                                                        : slash - begin);
      node = &node->children[seg];
      if (slash == std::string::npos) break;
      begin = slash + 1;
    }
    node->stat = stat;
  }
  return root;
}

void render_phase_node(const PhaseNode& node, const std::string& name,
                       int indent, std::uint64_t parent_total_ns,
                       std::string& out) {
  if (!name.empty()) {
    char line[160];
    const double ms =
        static_cast<double>(node.stat.total_ns) / 1e6;
    std::string head(static_cast<std::size_t>(indent) * 2, ' ');
    head += name;
    if (parent_total_ns > 0) {
      const double pct = 100.0 * static_cast<double>(node.stat.total_ns) /
                         static_cast<double>(parent_total_ns);
      std::snprintf(line, sizeof line, "%-40s %10.3f ms  x%-8" PRIu64 " %5.1f%%\n",
                    head.c_str(), ms, node.stat.count, pct);
    } else {
      std::snprintf(line, sizeof line, "%-40s %10.3f ms  x%" PRIu64 "\n",
                    head.c_str(), ms, node.stat.count);
    }
    out += line;
  }
  // Children sorted by total time (descending), ties by name, so the
  // expensive phases read first.
  std::vector<const std::pair<const std::string, PhaseNode>*> kids;
  kids.reserve(node.children.size());
  for (const auto& kv : node.children) kids.push_back(&kv);
  std::sort(kids.begin(), kids.end(), [](const auto* a, const auto* b) {
    if (a->second.stat.total_ns != b->second.stat.total_ns) {
      return a->second.stat.total_ns > b->second.stat.total_ns;
    }
    return a->first < b->first;
  });
  for (const auto* kv : kids) {
    render_phase_node(kv->second, kv->first, name.empty() ? indent : indent + 1,
                      name.empty() ? 0 : node.stat.total_ns, out);
  }
}

}  // namespace

std::string Registry::to_json(bool include_wall_clock) const {
  const Snapshot snap = snapshot();
  std::string out = "{\n  \"schema\": \"lcsf-metrics-v1\",\n";
  out += "  \"deterministic\": ";
  out += include_wall_clock ? "false" : "true";
  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + fmt_u64(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"distributions\": {";
  first = true;
  for (const auto& [name, d] : snap.distributions) {
    if (!include_wall_clock && is_wall_clock_metric(name)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           fmt_u64(d.count) + ", \"min\": " + fmt_double(d.min) +
           ", \"max\": " + fmt_double(d.max) +
           ", \"mean\": " + fmt_double(d.mean) +
           ", \"p50\": " + fmt_double(d.p50) +
           ", \"p95\": " + fmt_double(d.p95) + "}";
  }
  out += first ? "}" : "\n  }";
  if (include_wall_clock) {
    out += ",\n  \"timers\": {";
    first = true;
    for (const auto& [path, t] : snap.timers) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"" + json_escape(path) + "\": {\"count\": " +
             fmt_u64(t.count) + ", \"total_seconds\": " +
             fmt_double(static_cast<double>(t.total_ns) / 1e9) + "}";
    }
    out += first ? "}" : "\n  }";
  }
  out += "\n}\n";
  return out;
}

std::string Registry::timing_report() const {
  const Snapshot snap = snapshot();
  if (snap.timers.empty()) {
    return "phase-time tree: no spans recorded\n";
  }
  std::string out = "phase-time tree (wall clock, inclusive):\n";
  const PhaseNode root = build_phase_tree(snap.timers);
  render_phase_node(root, "", 0, 0, out);
  return out;
}

std::string Registry::chrome_trace_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (std::size_t k = 0; k < snap.spans.size(); ++k) {
    const SpanEvent& s = snap.spans[k];
    const std::size_t slash = s.path.rfind('/');
    const std::string leaf =
        slash == std::string::npos ? s.path : s.path.substr(slash + 1);
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"" + json_escape(leaf) +
           "\", \"cat\": \"lcsf\", \"ph\": \"X\", \"ts\": " +
           fmt_double(static_cast<double>(s.start_ns) / 1e3) +
           ", \"dur\": " + fmt_double(static_cast<double>(s.dur_ns) / 1e3) +
           ", \"pid\": 0, \"tid\": " + fmt_u64(snap.lane_of[k]) +
           ", \"args\": {\"path\": \"" + json_escape(s.path) + "\"}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace lcsf::obs
