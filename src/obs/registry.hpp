// Observability substrate: thread-safe metrics (monotonic counters, value
// distributions, wall-clock phase timers) and the per-thread recording
// context the scoped trace spans write through.
//
// Design constraints (docs/observability.md):
//  * Recording never perturbs results. Metrics are written to per-lane
//    sinks -- one sink per runtime::ThreadPool lane, each touched by at most
//    one thread at a time (the pool's lane exclusivity contract) -- and
//    merged only at snapshot() time, after the parallel joins. Enabling
//    observability therefore cannot change the bitwise thread-count
//    invariance of any statistical driver.
//  * The merge is deterministic: counters are summed (64-bit, order
//    independent) and distribution values are sorted into a canonical
//    order before any floating-point accumulation, so counter and
//    distribution values are bitwise identical for every thread count.
//    Wall-clock quantities are inherently nondeterministic; by convention
//    they carry a `_seconds`/`_ms`/`_us`/`_ns` name suffix and are
//    excluded from the deterministic export (to_json(false)).
//  * The disabled path is near-zero cost. With no registry installed on
//    the current thread every recording call is one thread-local load and
//    a branch; with LCSF_OBS_ENABLED=0 (cmake -DLCSF_OBS=OFF) the calls
//    compile away entirely.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

// Compile-time gate; the build defines it via the LCSF_OBS cmake option
// (default ON). The default here keeps standalone includes working.
#ifndef LCSF_OBS_ENABLED
#define LCSF_OBS_ENABLED 1
#endif

namespace lcsf::obs {

class Registry;

/// Wall-clock aggregate of one span path: how many times it ran and the
/// total nanoseconds spent inside (inclusive of children).
struct TimerStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// One completed trace span, recorded by obs::ScopedSpan at destruction.
/// `path` is the '/'-joined chain of enclosing span names on the
/// recording thread ("stats.monte_carlo/teta.stage"), which is also the
/// timer key; `start_ns` is relative to the owning Registry's epoch.
struct SpanEvent {
  std::string path;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;
};

/// Per-lane metric storage. A sink is only ever written by the single
/// thread currently holding its lane (see ScopedContext), so recording
/// needs no synchronization; Registry::snapshot() reads all sinks after
/// the parallel joins.
class LaneSink {
 public:
  void add_counter(std::string_view name, std::uint64_t delta);
  void record_value(std::string_view name, double value);
  void record_span(const std::string& path, std::uint64_t start_ns,
                   std::uint64_t dur_ns, std::uint32_t depth);

  /// Trace-event retention cap per lane; timers keep aggregating past it
  /// and the overflow is counted in the `obs.spans_dropped` counter.
  static constexpr std::size_t kMaxSpansPerLane = 1u << 20;

 private:
  friend class Registry;
  // Ordered maps, not unordered: snapshot() iterates these to build the
  // merged (and ultimately serialized) view, so the per-lane iteration
  // order must be canonical. The name-keyed sorted order makes the merge
  // independent of insertion history (and of the hash seed), which the
  // `nondeterministic-iteration` lint rule enforces tree-wide.
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::vector<double>> values_;
  std::map<std::string, TimerStat> timers_;
  std::vector<SpanEvent> spans_;
};

/// Deterministically merged view of every lane sink. Map keys give the
/// canonical (sorted) iteration order the exporters rely on.
struct Snapshot {
  struct Distribution {
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, Distribution> distributions;
  std::map<std::string, TimerStat> timers;
  /// All span events, ordered by (lane, recording order); `lane_of[k]`
  /// is the lane that recorded `spans[k]`.
  std::vector<SpanEvent> spans;
  std::vector<std::size_t> lane_of;
};

/// The metrics registry one observed run writes into. Create one per run
/// (or per tool invocation), install it on the participating threads with
/// ScopedContext, and export after the work joins.
///
/// Thread-safety: lane_sink() may be called concurrently (sink creation
/// is mutex-guarded; returned references are stable). Recording through a
/// sink is unsynchronized by design -- the lane exclusivity contract makes
/// it race-free. snapshot()/exporters must only run while no thread is
/// recording (i.e. after parallel sections join).
class Registry {
 public:
  Registry();

  /// The sink for one thread-pool lane, created on first use.
  LaneSink& lane_sink(std::size_t lane);

  /// Monotonic nanoseconds since this registry was constructed.
  std::uint64_t now_ns() const;

  /// Deterministic merge of all lanes (see file comment).
  Snapshot snapshot() const;

  /// Structured JSON export (schema: tools/metrics_schema.json). With
  /// `include_wall_clock == false` the timers section and every
  /// time-suffixed distribution are omitted; what remains is bitwise
  /// identical for every thread count.
  std::string to_json(bool include_wall_clock = true) const;

  /// Human-readable phase-time tree built from the span timers.
  std::string timing_report() const;

  /// Chrome trace_event JSON (load via about:tracing or Perfetto).
  std::string chrome_trace_json() const;

 private:
  mutable std::mutex mu_;  // guards lanes_ growth only
  std::vector<std::unique_ptr<LaneSink>> lanes_;
  std::chrono::steady_clock::time_point epoch_;
};

/// True when `name` denotes a wall-clock quantity (suffix convention:
/// `_seconds`, `_ms`, `_us`, `_ns`) and must be excluded from the
/// deterministic export.
bool is_wall_clock_metric(std::string_view name);

/// Per-thread recording context: which registry/lane this thread writes
/// to, plus the active span path for the tree reconstruction.
struct Context {
  Registry* registry = nullptr;
  LaneSink* sink = nullptr;
  std::uint32_t depth = 0;
  std::string path;  ///< '/'-joined active span names
};

#if LCSF_OBS_ENABLED

/// The calling thread's context (disabled when no registry installed).
Context& context();

inline bool enabled() { return context().registry != nullptr; }

/// The registry installed on the calling thread, if any. Drivers use this
/// to inherit an ambient registry when their options carry none.
inline Registry* ambient_registry() { return context().registry; }

/// Bump a monotonic counter on the current lane; no-op when disabled.
void add_counter(std::string_view name, std::uint64_t delta = 1);

/// Record one observation of a value distribution; no-op when disabled.
void record_value(std::string_view name, double value);

/// Nanoseconds since the installed registry's epoch; 0 when disabled.
std::uint64_t now_ns();

/// RAII installation of (registry, lane) on the current thread; restores
/// the previous context on destruction. Passing a null registry disables
/// recording within the scope. The statistical drivers install one per
/// worker chunk so engine code deep in the per-sample pipeline records to
/// the right lane without plumbing.
class ScopedContext {
 public:
  ScopedContext(Registry* registry, std::size_t lane);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Context saved_;
};

#else  // LCSF_OBS_ENABLED == 0: everything compiles away.

inline bool enabled() { return false; }
inline Registry* ambient_registry() { return nullptr; }
inline void add_counter(std::string_view, std::uint64_t = 1) {}
inline void record_value(std::string_view, double) {}
inline std::uint64_t now_ns() { return 0; }

class ScopedContext {
 public:
  ScopedContext(Registry*, std::size_t) {}
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;
};

#endif  // LCSF_OBS_ENABLED

}  // namespace lcsf::obs
