// Scoped trace spans: RAII phase/region timing on top of obs::Registry.
//
// A span MUST be a named stack object:
//
//   obs::ScopedSpan span("mor.stabilize");   // right
//   obs::ScopedSpan{"mor.stabilize"};        // WRONG: temporary dies
//                                            // immediately, records a
//                                            // zero-length span
//
// The lcsf_lint rule `obs-span-balance` rejects the temporary form.
#pragma once

#include <string_view>

#include "obs/registry.hpp"

namespace lcsf::obs {

#if LCSF_OBS_ENABLED

/// Records one SpanEvent (and feeds the path's phase timer) covering the
/// object's lifetime. Inactive -- two loads and a branch -- when no
/// registry is installed on the constructing thread. Spans nest: the
/// recorded path is the '/'-join of every live span on this thread.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  LaneSink* sink_ = nullptr;  ///< null when inactive
  std::uint64_t start_ns_ = 0;
  std::size_t parent_path_len_ = 0;
};

#else

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // LCSF_OBS_ENABLED

}  // namespace lcsf::obs
