#include "obs/registry.hpp"

#include <algorithm>

#include "obs/span.hpp"

namespace lcsf::obs {

// ---------------------------------------------------------------------
// LaneSink
// ---------------------------------------------------------------------

void LaneSink::add_counter(std::string_view name, std::uint64_t delta) {
  counters_[std::string(name)] += delta;
}

void LaneSink::record_value(std::string_view name, double value) {
  values_[std::string(name)].push_back(value);
}

void LaneSink::record_span(const std::string& path, std::uint64_t start_ns,
                           std::uint64_t dur_ns, std::uint32_t depth) {
  TimerStat& t = timers_[path];
  ++t.count;
  t.total_ns += dur_ns;
  if (spans_.size() < kMaxSpansPerLane) {
    spans_.push_back({path, start_ns, dur_ns, depth});
  } else {
    ++counters_["obs.spans_dropped"];
  }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

Registry::Registry() : epoch_(std::chrono::steady_clock::now()) {}

LaneSink& Registry::lane_sink(std::size_t lane) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (lane >= lanes_.size()) lanes_.resize(lane + 1);
  if (!lanes_[lane]) lanes_[lane] = std::make_unique<LaneSink>();
  return *lanes_[lane];
}

std::uint64_t Registry::now_ns() const {
  const auto d = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  const std::lock_guard<std::mutex> lock(mu_);
  // Counters: 64-bit sums commute, so the lane iteration order cannot
  // matter. Timers likewise sum exactly (integer nanoseconds).
  for (const auto& lane : lanes_) {
    if (!lane) continue;
    for (const auto& [name, v] : lane->counters_) snap.counters[name] += v;
    for (const auto& [name, t] : lane->timers_) {
      TimerStat& dst = snap.timers[name];
      dst.count += t.count;
      dst.total_ns += t.total_ns;
    }
  }
  // Distributions: gather every lane's observations, then sort into a
  // canonical order BEFORE any floating-point reduction. The multiset of
  // recorded values is thread-count invariant (each deterministic value
  // is recorded exactly once, whatever lane evaluated it), so the sorted
  // vector -- and every statistic folded over it in that order -- is
  // bitwise identical for every thread count.
  std::map<std::string, std::vector<double>> gathered;
  for (const auto& lane : lanes_) {
    if (!lane) continue;
    for (const auto& [name, vals] : lane->values_) {
      auto& dst = gathered[name];
      dst.insert(dst.end(), vals.begin(), vals.end());
    }
  }
  for (auto& [name, vals] : gathered) {
    std::sort(vals.begin(), vals.end());
    Snapshot::Distribution d;
    d.count = static_cast<std::uint64_t>(vals.size());
    if (!vals.empty()) {
      d.min = vals.front();
      d.max = vals.back();
      double sum = 0.0;
      for (const double v : vals) sum += v;
      d.mean = sum / static_cast<double>(vals.size());
      // Nearest-rank quantiles on the sorted sample.
      auto rank = [&vals](double q) {
        const auto n = vals.size();
        auto idx = static_cast<std::size_t>(q * static_cast<double>(n));
        if (idx >= n) idx = n - 1;
        return vals[idx];
      };
      d.p50 = rank(0.50);
      d.p95 = rank(0.95);
    }
    snap.distributions.emplace(name, d);
  }
  // Spans in (lane, recording order): deterministic given a fixed lane
  // assignment; only consumed by the (wall-clock) trace export.
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    if (!lanes_[k]) continue;
    for (const auto& s : lanes_[k]->spans_) {
      snap.spans.push_back(s);
      snap.lane_of.push_back(k);
    }
  }
  return snap;
}

bool is_wall_clock_metric(std::string_view name) {
  for (const char* suffix : {"_seconds", "_ms", "_us", "_ns"}) {
    const std::string_view suf(suffix);
    if (name.size() >= suf.size() &&
        name.substr(name.size() - suf.size()) == suf) {
      return true;
    }
  }
  return false;
}

#if LCSF_OBS_ENABLED

// ---------------------------------------------------------------------
// Thread-local context + recording entry points
// ---------------------------------------------------------------------

Context& context() {
  thread_local Context ctx;
  return ctx;
}

void add_counter(std::string_view name, std::uint64_t delta) {
  Context& ctx = context();
  if (ctx.sink == nullptr) return;
  ctx.sink->add_counter(name, delta);
}

void record_value(std::string_view name, double value) {
  Context& ctx = context();
  if (ctx.sink == nullptr) return;
  ctx.sink->record_value(name, value);
}

std::uint64_t now_ns() {
  const Context& ctx = context();
  return ctx.registry != nullptr ? ctx.registry->now_ns() : 0;
}

ScopedContext::ScopedContext(Registry* registry, std::size_t lane) {
  Context& ctx = context();
  saved_ = std::move(ctx);
  ctx.registry = registry;
  ctx.sink = registry != nullptr ? &registry->lane_sink(lane) : nullptr;
  ctx.depth = 0;
  ctx.path.clear();
}

ScopedContext::~ScopedContext() { context() = std::move(saved_); }

// ---------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------

ScopedSpan::ScopedSpan(std::string_view name) {
  Context& ctx = context();
  if (ctx.registry == nullptr) return;
  sink_ = ctx.sink;
  parent_path_len_ = ctx.path.size();
  if (!ctx.path.empty()) ctx.path += '/';
  ctx.path += name;
  ++ctx.depth;
  start_ns_ = ctx.registry->now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (sink_ == nullptr) return;
  Context& ctx = context();
  const std::uint64_t end_ns =
      ctx.registry != nullptr ? ctx.registry->now_ns() : start_ns_;
  --ctx.depth;
  sink_->record_span(ctx.path, start_ns_, end_ns - start_ns_, ctx.depth);
  ctx.path.resize(parent_path_len_);
}

#endif  // LCSF_OBS_ENABLED

}  // namespace lcsf::obs
