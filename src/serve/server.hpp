// Persistent TCP analysis server speaking lcsf-serve-v1 NDJSON
// (docs/serving.md): one JSON request per line in, one JSON response
// per line out, connections multiplexed over a runtime::ThreadPool.
//
// Lifecycle: construct, bind_and_listen() (resolves the ephemeral port
// when options.port == 0), then run() -- which blocks until a client
// sends a `shutdown` request or another thread calls request_stop().
// Each pool lane owns an accept-and-serve loop: it accepts one
// connection, serves its requests to EOF through
// serve::dispatch_request, and goes back to accepting, so up to
// `workers` connections are served concurrently. Analyses inside a
// request run on their own transient pools with the request's thread
// count (runtime::TaskRootScope re-roots the nesting).
//
// The server binds the IPv4 loopback interface only: this is a local
// analysis daemon, not an internet-facing service.
#pragma once

#include <atomic>
#include <cstddef>
#include <shared_mutex>

#include "obs/registry.hpp"
#include "serve/cache.hpp"

namespace lcsf::serve {

struct ServerOptions {
  int port = 0;             ///< TCP port; 0 = kernel-assigned ephemeral
  std::size_t workers = 4;  ///< concurrent connection-handler lanes
  std::size_t cache_bytes = 256u << 20;  ///< DesignCache byte budget
  /// Server-wide metrics registry (serve.* counters, request latency,
  /// merged engine counters); null disables recording.
  obs::Registry* registry = nullptr;
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Create, bind and listen on the socket. After this port() is the
  /// actual port. Throws sim::SimulationError on socket failures.
  void bind_and_listen();
  int port() const { return port_; }

  /// Serve until shutdown. Blocking; callable from inside a pool task
  /// (it re-roots its own worker pool).
  void run();

  /// Thread-safe stop: wakes every blocked accept and makes run()
  /// return after in-flight requests finish.
  void request_stop();

  DesignCache& cache() { return cache_; }

 private:
  void accept_loop(std::size_t lane);
  void serve_connection(int fd, std::size_t lane);

  ServerOptions opt_;
  DesignCache cache_;
  std::shared_mutex metrics_gate_;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  int port_ = 0;
};

}  // namespace lcsf::serve
