#include "serve/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "runtime/thread_pool.hpp"
#include "serve/protocol.hpp"
#include "sim/diagnostics.hpp"

namespace lcsf::serve {

namespace {

[[noreturn]] void throw_socket_error(const char* what) {
  throw sim::SimulationError(
      sim::FailureKind::kOther,
      std::string(what) + ": " + std::strerror(errno));
}

/// send() the whole buffer; MSG_NOSIGNAL turns a dead peer into an
/// error return instead of SIGPIPE. Returns false when the peer is
/// gone (the connection is then abandoned).
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions opt)
    : opt_(opt), cache_(DesignCache::Config{opt.cache_bytes}) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::bind_and_listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_socket_error("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_socket_error("bind");
  }
  if (::listen(listen_fd_, 64) != 0) throw_socket_error("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) != 0) {
    throw_socket_error("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

void Server::run() {
  if (listen_fd_ < 0) bind_and_listen();
  // The caller may itself be a pool task (tests and the bench run the
  // server on a harness pool lane); re-root so our worker pool below
  // actually spawns threads instead of inlining.
  runtime::TaskRootScope root;
  const std::size_t workers = opt_.workers == 0 ? 1 : opt_.workers;
  runtime::ThreadPool pool(workers);
  // One blocking accept loop per chunk, grain 1: each pool thread
  // claims a chunk and serves connections until request_stop().
  pool.parallel_for_lanes(
      workers,
      [this](std::size_t begin, std::size_t end, std::size_t lane) {
        for (std::size_t k = begin; k < end; ++k) accept_loop(lane);
      },
      1);
}

void Server::request_stop() {
  stop_.store(true);
  // Wake every accept() blocked on the listening socket.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::accept_loop(std::size_t lane) {
  while (!stop_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // request_stop() shut the listening socket down; any other
      // accept failure on a healthy socket is transient -- either way
      // re-check the stop flag.
      if (stop_.load()) break;
      continue;
    }
    serve_connection(fd, lane);
    ::close(fd);
  }
}

void Server::serve_connection(int fd, std::size_t lane) {
  ServeContext ctx;
  ctx.cache = &cache_;
  ctx.registry = opt_.registry;
  ctx.metrics_gate = &metrics_gate_;
  ctx.lane = lane;

  std::string buffer;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) return;  // client closed
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const DispatchResult result = dispatch_request(line, ctx);
      if (!send_all(fd, result.response + "\n")) return;
      if (result.shutdown) {
        request_stop();
        return;
      }
    }
    buffer.erase(0, start);
  }
}

}  // namespace lcsf::serve
