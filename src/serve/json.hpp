// Minimal deterministic JSON value for the lcsf-serve-v1 wire protocol.
//
// Why not a library: the container bakes in no JSON dependency, and the
// protocol needs two properties most libraries do not guarantee
// together -- (1) object members keep insertion order so a response
// serializes to the same bytes on every run (the cached-vs-cold and
// concurrent-vs-serial bitwise-identity contracts of docs/serving.md),
// and (2) parsing is strict (duplicate keys rejected, full input
// consumed) so a malformed request is a classified kInvalidInput error
// instead of silently-ignored garbage.
//
// Numbers: doubles serialize with %.17g (round-trips exactly);
// integer-valued tokens keep an integer representation so counters
// print without an exponent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lcsf::serve {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json integer(std::int64_t v);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  /// Strict parse of one complete JSON document; trailing non-space
  /// input, duplicate object keys, or any syntax error throws
  /// sim::SimulationError (kInvalidInput) with a position diagnostic.
  static Json parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  std::int64_t as_int() const;     ///< throws unless an integer token
  double as_double() const;        ///< any number
  const std::string& as_string() const;
  const std::vector<Json>& items() const;  ///< array elements

  using Member = std::pair<std::string, Json>;
  const std::vector<Member>& members() const;  ///< insertion order

  /// Object member lookup; null when absent (or not an object).
  const Json* find(const std::string& key) const;

  /// Append a member (object) / element (array). Returns *this for
  /// chaining. No duplicate-key check on the write path -- the builder
  /// is trusted code; the parser is where strictness lives.
  Json& set(const std::string& key, Json value);
  Json& push(Json value);

  /// Canonical serialization: members in insertion order, no
  /// whitespace, %.17g doubles. Same value -> same bytes, always.
  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<Member> members_;
};

/// Escape a string for inclusion in a JSON document (no quotes added).
std::string json_escape(const std::string& s);

}  // namespace lcsf::serve
