#include "serve/cache.hpp"

#include <utility>

#include "obs/registry.hpp"

namespace lcsf::serve {

std::shared_ptr<api::Session> DesignCache::get(const api::DesignSpec& spec) {
  // Key computation classifies bad specs (unknown circuit/tech) before
  // any cache state is touched.
  const std::string key = spec.cache_key();

  Future future;
  std::promise<std::shared_ptr<api::Session>> promise;
  bool loader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.last_use = ++tick_;
      ++stats_.hits;
      future = it->second.future;
    } else {
      ++stats_.misses;
      loader = true;
      Entry e;
      e.future = promise.get_future().share();
      e.last_use = ++tick_;
      future = e.future;
      entries_.emplace(key, std::move(e));
    }
  }
  obs::add_counter(loader ? "serve.cache.misses" : "serve.cache.hits");

  if (loader) {
    std::shared_ptr<api::Session> session;
    try {
      session = api::Session::load(spec);
    } catch (...) {
      // Propagate to every coalesced waiter, then forget the entry so a
      // later request re-attempts the load.
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mu_);
      entries_.erase(key);
      throw;
    }
    promise.set_value(session);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.bytes = session->memory_bytes();
      it->second.ready = true;
      resident_bytes_ += it->second.bytes;
      evict_locked(key);
    }
    return session;
  }
  return future.get();
}

void DesignCache::evict_locked(const std::string& keep) {
  std::size_t evicted = 0;
  while (resident_bytes_ > cfg_.max_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.ready || it->first == keep) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // nothing evictable left
    resident_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++stats_.evictions;
    ++evicted;
  }
  if (evicted > 0) obs::add_counter("serve.cache.evictions", evicted);
}

DesignCache::Stats DesignCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t DesignCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

std::size_t DesignCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace lcsf::serve
