// The lcsf-serve-v1 request dispatcher (docs/serving.md).
//
// One request = one JSON object on one line; one response = one JSON
// object on one line. dispatch_request is a pure function of (request
// line, shared context): the TCP server calls it per received line, and
// the tests / bench call it in-process -- the wire layer adds nothing
// but framing, so in-process and over-the-wire behavior are identical
// by construction.
//
// Determinism: every response except `metrics` is built exclusively
// from deterministic analysis results and serializes via serve::Json's
// canonical dump, so the same request yields the same response bytes
// whether the design was cold or cached, and whichever thread/lane
// handled it. The `metrics` response (and only it) carries wall-clock
// content by design.
//
// Field-by-field request/response documentation lives in
// docs/serving.md; the machine-readable response contract is
// tools/serve_schema.json (validated by tools/check_serve.py).
#pragma once

#include <cstddef>
#include <shared_mutex>
#include <string>

#include "obs/registry.hpp"
#include "serve/cache.hpp"

namespace lcsf::serve {

/// Shared state a dispatcher operates on. One ServeContext per
/// connection lane; `cache`, `registry` and `metrics_gate` are shared
/// across lanes (the registry through per-lane sinks, the gate
/// arbitrating recording vs. snapshotting).
struct ServeContext {
  DesignCache* cache = nullptr;
  /// Server-wide metrics (serve.* plus engine counters merged per
  /// request). Null disables recording.
  obs::Registry* registry = nullptr;
  /// Readers-writer gate between metric recording (shared, held for
  /// the duration of every non-metrics request) and Registry::snapshot
  /// (exclusive, taken by the `metrics` request). Required when
  /// `registry` is shared by concurrent lanes; may be null otherwise.
  std::shared_mutex* metrics_gate = nullptr;
  std::size_t lane = 0;  ///< obs lane of this connection handler
};

struct DispatchResult {
  std::string response;   ///< one JSON line (no trailing newline)
  bool shutdown = false;  ///< request asked the server to stop
};

/// Parse, validate, execute and serialize one request. Never throws:
/// every failure -- malformed JSON, unknown/missing fields, unknown
/// circuit, a diverging simulation under on_failure=abort -- becomes an
/// error response carrying the classified sim::FailureKind name.
DispatchResult dispatch_request(const std::string& line, ServeContext& ctx);

}  // namespace lcsf::serve
