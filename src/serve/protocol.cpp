#include "serve/protocol.hpp"

#include <cmath>
#include <exception>
#include <initializer_list>
#include <mutex>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "serve/json.hpp"
#include "sim/diagnostics.hpp"

namespace lcsf::serve {

namespace {

// ---- request field access (strict: unknown keys are errors) ----------

void check_fields(const Json& req,
                  std::initializer_list<const char*> allowed) {
  for (const Json::Member& m : req.members()) {
    bool ok = false;
    for (const char* a : allowed) {
      if (m.first == a) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      sim::throw_invalid_input("unknown request field '" + m.first + "'");
    }
  }
}

std::string get_string(const Json& req, const char* key,
                       const std::string& fallback) {
  const Json* v = req.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) {
    sim::throw_invalid_input(std::string("field '") + key +
                             "' must be a string");
  }
  return v->as_string();
}

std::size_t get_size(const Json& req, const char* key,
                     std::size_t fallback) {
  const Json* v = req.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_int() || v->as_int() < 0) {
    sim::throw_invalid_input(std::string("field '") + key +
                             "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(v->as_int());
}

double get_double(const Json& req, const char* key, double fallback) {
  const Json* v = req.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    sim::throw_invalid_input(std::string("field '") + key +
                             "' must be a number");
  }
  return v->as_double();
}

bool get_bool(const Json& req, const char* key, bool fallback) {
  const Json* v = req.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    sim::throw_invalid_input(std::string("field '") + key +
                             "' must be a boolean");
  }
  return v->as_bool();
}

// ---- shared request fragments ----------------------------------------

/// The design-identity fields shared by load and the analysis requests.
/// `graph_mode`: the request type's stance on multi-path mode -- forced
/// off (gradients), forced on (graph), or reader's choice (load,
/// monte_carlo, yield take a `graph` boolean).
enum class GraphField { kOff, kOn, kOptional };

api::DesignSpec parse_design(const Json& req, GraphField graph_mode,
                             const std::string& on_failure) {
  api::DesignSpec spec;
  spec.circuit = get_string(req, "circuit", "");
  if (spec.circuit.empty()) {
    sim::throw_invalid_input("missing required field 'circuit'");
  }
  spec.elements = get_size(req, "elements", 10);
  switch (graph_mode) {
    case GraphField::kOff: spec.graph = false; break;
    case GraphField::kOn: spec.graph = true; break;
    case GraphField::kOptional:
      spec.graph = get_bool(req, "graph", false);
      break;
  }
  spec.top_k = get_size(req, "top_k", 8);
  spec.retry = on_failure == "retry";
  return spec;
}

std::string parse_on_failure(const Json& req) {
  const std::string s = get_string(req, "on_failure", "abort");
  if (s != "abort" && s != "skip" && s != "retry") {
    sim::throw_invalid_input("field 'on_failure' must be abort, skip or "
                             "retry");
  }
  return s;
}

stats::RunOptions parse_run_options(const Json& req,
                                    const std::string& on_failure,
                                    obs::Registry* run_registry) {
  stats::RunOptions opt;
  opt.samples = get_size(req, "samples", 100);
  if (opt.samples == 0) {
    sim::throw_invalid_input("field 'samples' must be >= 1");
  }
  opt.seed = static_cast<std::uint64_t>(get_size(req, "seed", 1));
  opt.exec.threads = get_size(req, "threads", 0);
  opt.exec.batch = get_size(req, "batch", 0);
  opt.exec.on_failure = on_failure == "abort" ? stats::FailurePolicy::kAbort
                                              : stats::FailurePolicy::kSkip;
  opt.registry = run_registry;
  return opt;
}

core::PathVariationModel parse_model(const Json& req) {
  core::PathVariationModel model;
  model.std_dl = get_double(req, "std_dl", 0.33);
  model.std_vt = get_double(req, "std_vt", 0.33);
  return model;
}

// ---- response building ------------------------------------------------

Json response_base(const Json& id, const char* type, bool ok) {
  Json r = Json::object();
  r.set("id", id);
  r.set("ok", Json::boolean(ok));
  r.set("protocol", Json::string("lcsf-serve-v1"));
  r.set("type", Json::string(type));
  return r;
}

Json failures_json(const stats::FailureSummary& f) {
  Json out = Json::object();
  out.set("attempted", Json::integer(static_cast<std::int64_t>(f.attempted)));
  out.set("survived", Json::integer(static_cast<std::int64_t>(f.survived)));
  Json kinds = Json::object();
  for (std::size_t k = 0; k < sim::kNumFailureKinds; ++k) {
    const auto kind = static_cast<sim::FailureKind>(k);
    if (f.count(kind) > 0) {
      kinds.set(sim::failure_kind_name(kind),
                Json::integer(static_cast<std::int64_t>(f.count(kind))));
    }
  }
  out.set("kinds", std::move(kinds));
  return out;
}

Json mc_json(const stats::MonteCarloResult& mc) {
  Json out = Json::object();
  out.set("samples",
          Json::integer(static_cast<std::int64_t>(mc.failures.attempted)));
  out.set("survivors",
          Json::integer(static_cast<std::int64_t>(mc.values.size())));
  out.set("mean", Json::number(mc.stats.mean()));
  out.set("stddev", Json::number(mc.stats.stddev()));
  if (mc.failures.any()) out.set("failures", failures_json(mc.failures));
  return out;
}

/// The deterministic projection of a per-request registry, embedded
/// into the response when the request set include_metrics. Parsing our
/// own exporter's output keeps one source of truth for the metrics
/// schema (tools/metrics_schema.json).
void embed_metrics(Json& response, const obs::Registry& reg) {
  response.set("metrics", Json::parse(reg.to_json(false)));
}

/// Fold a finished per-request registry's engine counters into the
/// server-wide registry via the ambient obs context, so serve-level
/// dashboards see cumulative teta.*/stats.* work alongside serve.*.
void merge_counters(const obs::Registry& reg) {
  if (!obs::enabled()) return;
  const obs::Snapshot snap = reg.snapshot();
  for (const auto& [name, value] : snap.counters) {
    obs::add_counter(name, value);
  }
}

// ---- request handlers -------------------------------------------------

Json handle_load(const Json& req, const Json& id,
                 ServeContext& ctx) {
  check_fields(req, {"id", "type", "circuit", "elements", "graph", "top_k",
                     "on_failure"});
  const std::string on_failure = parse_on_failure(req);
  const api::DesignSpec spec =
      parse_design(req, GraphField::kOptional, on_failure);
  const auto session = ctx.cache->get(spec);

  Json r = response_base(id, "load", true);
  r.set("design", Json::string(session->key()));
  r.set("mode", Json::string(session->is_graph() ? "graph" : "path"));
  r.set("gates", Json::integer(static_cast<std::int64_t>(
                     session->netlist().gates.size())));
  r.set("latches", Json::integer(static_cast<std::int64_t>(
                       session->benchmark().num_latches)));
  if (session->is_graph()) {
    const core::GraphAnalyzer* g = session->graph_analyzer();
    r.set("paths", Json::integer(static_cast<std::int64_t>(
                       g->paths().size())));
    r.set("blocks",
          Json::integer(static_cast<std::int64_t>(g->num_blocks())));
    r.set("endpoints", Json::integer(static_cast<std::int64_t>(
                           g->endpoint_nets().size())));
  } else {
    r.set("stages", Json::integer(static_cast<std::int64_t>(
                        session->longest_path().length())));
  }
  r.set("memory_bytes",
        Json::integer(static_cast<std::int64_t>(session->memory_bytes())));
  return r;
}

Json handle_monte_carlo(const Json& req, const Json& id,
                        ServeContext& ctx) {
  check_fields(req, {"id", "type", "circuit", "elements", "graph", "top_k",
                     "on_failure", "samples", "seed", "threads", "batch",
                     "std_dl", "std_vt", "rho", "include_metrics"});
  const std::string on_failure = parse_on_failure(req);
  const api::DesignSpec spec =
      parse_design(req, GraphField::kOptional, on_failure);
  obs::Registry run_reg;
  const stats::RunOptions opt =
      parse_run_options(req, on_failure, &run_reg);
  const core::PathVariationModel model = parse_model(req);
  const double rho = get_double(req, "rho", -1.0);
  const auto session = ctx.cache->get(spec);

  Json r = response_base(id, "monte_carlo", true);
  r.set("design", Json::string(session->key()));
  if (rho > 0.0) {
    const auto corr = session->run_monte_carlo_correlated(model, rho, opt);
    r.set("rho", Json::number(rho));
    r.set("total_sources", Json::integer(static_cast<std::int64_t>(
                               corr.total_sources)));
    r.set("factors_used", Json::integer(static_cast<std::int64_t>(
                              corr.factors_used)));
    r.set("monte_carlo", mc_json(corr.mc));
  } else {
    r.set("monte_carlo", mc_json(session->run_monte_carlo(model, opt)));
  }
  merge_counters(run_reg);
  if (get_bool(req, "include_metrics", false)) embed_metrics(r, run_reg);
  return r;
}

Json handle_gradients(const Json& req, const Json& id,
                      ServeContext& ctx) {
  check_fields(req, {"id", "type", "circuit", "elements", "on_failure",
                     "std_dl", "std_vt", "include_metrics"});
  const std::string on_failure = parse_on_failure(req);
  const api::DesignSpec spec =
      parse_design(req, GraphField::kOff, on_failure);
  const core::PathVariationModel model = parse_model(req);
  const auto session = ctx.cache->get(spec);

  obs::Registry run_reg;
  const auto ga = [&] {
    obs::ScopedContext run_scope(&run_reg, 0);
    return session->run_gradients(model);
  }();
  Json r = response_base(id, "gradients", true);
  r.set("design", Json::string(session->key()));
  r.set("nominal_delay", Json::number(ga.nominal_delay));
  r.set("stddev", Json::number(ga.stddev));
  r.set("simulations",
        Json::integer(static_cast<std::int64_t>(ga.simulations)));
  Json grad = Json::array();
  for (const double g : ga.gradient) grad.push(Json::number(g));
  r.set("gradient", std::move(grad));
  merge_counters(run_reg);
  if (get_bool(req, "include_metrics", false)) embed_metrics(r, run_reg);
  return r;
}

Json handle_yield(const Json& req, const Json& id,
                  ServeContext& ctx) {
  check_fields(req, {"id", "type", "circuit", "elements", "graph", "top_k",
                     "on_failure", "samples", "seed", "threads", "batch",
                     "std_dl", "std_vt", "estimator", "clock_period",
                     "yield_target", "is_pilot", "include_metrics"});
  const std::string on_failure = parse_on_failure(req);
  const api::DesignSpec spec =
      parse_design(req, GraphField::kOptional, on_failure);
  obs::Registry run_reg;
  stats::RunOptions opt = parse_run_options(req, on_failure, &run_reg);
  opt.importance.pilot_samples = get_size(req, "is_pilot", 0);
  const core::PathVariationModel model = parse_model(req);
  const std::string estimator = get_string(req, "estimator", "mc");
  const double clock_period = get_double(req, "clock_period", 0.0);
  const double yield_target = get_double(req, "yield_target", 0.9987);
  const auto session = ctx.cache->get(spec);

  const api::YieldResult y =
      session->run_yield(model, clock_period, estimator, yield_target, opt);
  Json r = response_base(id, "yield", true);
  r.set("design", Json::string(session->key()));
  r.set("estimator", Json::string(y.estimator));
  r.set("clock_period", Json::number(y.clock_period));
  r.set("yield", Json::number(y.yield));
  r.set("yield_loss", Json::number(y.yield_loss));
  r.set("std_error", Json::number(y.std_error));
  r.set("samples", Json::integer(static_cast<std::int64_t>(y.samples)));
  if (y.is.has_value()) {
    const stats::IsYieldEstimate& is = *y.is;
    r.set("ess", Json::number(is.ess));
    r.set("pilot_used",
          Json::integer(static_cast<std::int64_t>(is.pilot_used)));
    r.set("surrogate_beta", Json::number(is.surrogate.beta));
    if (is.control_variate_used) {
      r.set("control_coefficient", Json::number(is.control_coefficient));
      r.set("control_expectation", Json::number(is.control_expectation));
    }
  }
  if (y.failures.any()) r.set("failures", failures_json(y.failures));
  merge_counters(run_reg);
  if (get_bool(req, "include_metrics", false)) embed_metrics(r, run_reg);
  return r;
}

Json handle_graph(const Json& req, const Json& id,
                  ServeContext& ctx) {
  check_fields(req, {"id", "type", "circuit", "elements", "top_k",
                     "on_failure", "samples", "seed", "threads", "batch",
                     "std_dl", "std_vt", "include_metrics"});
  const std::string on_failure = parse_on_failure(req);
  const api::DesignSpec spec = parse_design(req, GraphField::kOn, on_failure);
  obs::Registry run_reg;
  const stats::RunOptions opt =
      parse_run_options(req, on_failure, &run_reg);
  const core::PathVariationModel model = parse_model(req);
  const auto session = ctx.cache->get(spec);

  const api::GraphResult g = session->run_graph(model, opt);
  Json r = response_base(id, "graph", true);
  r.set("design", Json::string(session->key()));
  r.set("paths", Json::integer(static_cast<std::int64_t>(
                     session->graph_analyzer()->paths().size())));
  r.set("blocks", Json::integer(static_cast<std::int64_t>(
                      session->graph_analyzer()->num_blocks())));
  r.set("monte_carlo", mc_json(g.mc));
  Json nominal = Json::object();
  nominal.set("max_delay", Json::number(g.nominal.max_delay));
  nominal.set("stages_simulated", Json::integer(static_cast<std::int64_t>(
                                      g.nominal.stages_simulated)));
  nominal.set("stage_cache_hits", Json::integer(static_cast<std::int64_t>(
                                      g.nominal.stage_cache_hits)));
  nominal.set("merges",
              Json::integer(static_cast<std::int64_t>(g.nominal.merges)));
  Json endpoints = Json::array();
  for (std::size_t k = 0; k < g.nominal.endpoints.size(); ++k) {
    const auto& e = g.nominal.endpoints[k];
    Json ep = Json::object();
    ep.set("net", Json::integer(static_cast<std::int64_t>(e.net)));
    ep.set("delay", Json::number(e.delay));
    ep.set("slew", Json::number(e.slew));
    ep.set("analytic_mean", Json::number(g.analytic[k].arrival.mean));
    ep.set("analytic_std",
           Json::number(std::sqrt(
               timing::ssta::variance(g.analytic[k].arrival))));
    endpoints.push(std::move(ep));
  }
  nominal.set("endpoints", std::move(endpoints));
  r.set("nominal", std::move(nominal));
  merge_counters(run_reg);
  if (get_bool(req, "include_metrics", false)) embed_metrics(r, run_reg);
  return r;
}

Json handle_metrics(const Json& req, const Json& id,
                    ServeContext& ctx) {
  check_fields(req, {"id", "type"});
  Json r = response_base(id, "metrics", true);
  if (ctx.registry != nullptr) {
    r.set("metrics", Json::parse(ctx.registry->to_json(true)));
  } else {
    r.set("metrics", Json::null());
  }
  if (ctx.cache != nullptr) {
    const DesignCache::Stats cs = ctx.cache->stats();
    Json cache = Json::object();
    cache.set("hits", Json::integer(static_cast<std::int64_t>(cs.hits)));
    cache.set("misses",
              Json::integer(static_cast<std::int64_t>(cs.misses)));
    cache.set("evictions",
              Json::integer(static_cast<std::int64_t>(cs.evictions)));
    cache.set("entries", Json::integer(static_cast<std::int64_t>(
                             ctx.cache->entries())));
    cache.set("resident_bytes", Json::integer(static_cast<std::int64_t>(
                                    ctx.cache->resident_bytes())));
    r.set("cache", std::move(cache));
  }
  return r;
}

Json error_response(const Json& id, const std::string& type,
                    sim::FailureKind kind, const std::string& message) {
  Json r = response_base(id, type.empty() ? "error" : type.c_str(), false);
  Json err = Json::object();
  err.set("kind", Json::string(sim::failure_kind_name(kind)));
  err.set("message", Json::string(message));
  r.set("error", std::move(err));
  return r;
}

}  // namespace

DispatchResult dispatch_request(const std::string& line, ServeContext& ctx) {
  // Install the server-wide registry for the serve.* metrics of this
  // request; analyses record into their own per-request registry (see
  // merge_counters). The TaskRootScope makes this handler a fresh
  // nesting root so per-request thread counts really parallelize even
  // though the connection handler itself runs inside a pool lane.
  obs::ScopedContext obs_scope(ctx.registry, ctx.lane);
  runtime::TaskRootScope task_root;

  Json id = Json::string("");
  std::string type;
  DispatchResult out;
  const std::uint64_t start_ns = obs::now_ns();

  // The metrics request snapshots the shared registry, which must not
  // run concurrently with another lane's recording: it takes the gate
  // exclusively, every other request holds it shared while it records.
  std::shared_lock<std::shared_mutex> read_gate;
  std::unique_lock<std::shared_mutex> write_gate;

  try {
    const Json req = Json::parse(line);
    if (!req.is_object()) {
      sim::throw_invalid_input("request must be a JSON object");
    }
    const Json* idv = req.find("id");
    if (idv == nullptr || !(idv->is_string() || idv->is_int())) {
      sim::throw_invalid_input(
          "missing required field 'id' (string or integer)");
    }
    id = *idv;
    type = get_string(req, "type", "");
    if (type.empty()) {
      sim::throw_invalid_input("missing required field 'type'");
    }

    if (ctx.metrics_gate != nullptr) {
      if (type == "metrics") {
        write_gate = std::unique_lock<std::shared_mutex>(*ctx.metrics_gate);
      } else {
        read_gate = std::shared_lock<std::shared_mutex>(*ctx.metrics_gate);
      }
    }
    obs::add_counter("serve.requests");
    obs::add_counter("serve.requests." + type);

    Json response;
    if (type == "shutdown") {
      check_fields(req, {"id", "type"});
      response = response_base(id, "shutdown", true);
      out.shutdown = true;
    } else if (type == "metrics") {
      response = handle_metrics(req, id, ctx);
    } else if (ctx.cache == nullptr) {
      sim::throw_invalid_input("server has no design cache");
    } else if (type == "load") {
      response = handle_load(req, id, ctx);
    } else if (type == "monte_carlo") {
      response = handle_monte_carlo(req, id, ctx);
    } else if (type == "gradients") {
      response = handle_gradients(req, id, ctx);
    } else if (type == "yield") {
      response = handle_yield(req, id, ctx);
    } else if (type == "graph") {
      response = handle_graph(req, id, ctx);
    } else {
      sim::throw_invalid_input("unknown request type '" + type + "'");
    }
    out.response = response.dump();
  } catch (const sim::SimulationError& e) {
    obs::add_counter("serve.errors");
    out.response =
        error_response(id, type, e.kind(), e.diagnostics().message())
            .dump();
  } catch (const std::exception& e) {
    obs::add_counter("serve.errors");
    out.response =
        error_response(id, type, sim::FailureKind::kOther, e.what()).dump();
  }

  const std::uint64_t end_ns = obs::now_ns();
  obs::record_value("serve.request_ms",
                    static_cast<double>(end_ns - start_ns) / 1.0e6);
  return out;
}

}  // namespace lcsf::serve
