#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/diagnostics.hpp"

namespace lcsf::serve {

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::integer(std::int64_t v) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = v;
  j.num_ = static_cast<double>(v);
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kDouble;
  j.num_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) sim::throw_invalid_input("expected a boolean");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::kInt) sim::throw_invalid_input("expected an integer");
  return int_;
}

double Json::as_double() const {
  if (!is_number()) sim::throw_invalid_input("expected a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) sim::throw_invalid_input("expected a string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) sim::throw_invalid_input("expected an array");
  return items_;
}

const std::vector<Json::Member>& Json::members() const {
  if (type_ != Type::kObject) {
    sim::throw_invalid_input("expected an object");
  }
  return members_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

Json& Json::set(const std::string& key, Json value) {
  type_ = Type::kObject;
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
  return *this;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Type::kDouble: {
      if (!std::isfinite(num_)) {
        // JSON has no Inf/NaN; emit null (strict readers stay happy).
        out += "null";
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", num_);
      out += buf;
      break;
    }
    case Type::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : items_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const Member& m : members_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(m.first);
        out += "\":";
        m.second.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    sim::throw_invalid_input("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json::string(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json::boolean(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json::boolean(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json::null();
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      if (obj.find(key) != nullptr) {
        fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP codepoint (surrogate pairs are not
          // needed by the protocol; reject them strictly).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    char* end = nullptr;
    if (integral) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') fail("bad integer");
      return Json::integer(v);
    }
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    return Json::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace lcsf::serve
