// Content-addressed cache of characterized designs (docs/serving.md).
//
// The expensive part of every analysis request is pre-characterization:
// generating/parsing the netlist and building the variational stage-load
// ROMs (api::Session::load). DesignCache keys completed sessions by
// api::DesignSpec::cache_key() -- a hash of the netlist *content* plus
// every characterization knob -- so any request over the same design
// reuses the warm artifacts.
//
// Concurrency: lookups coalesce. The first request for a key inserts an
// in-flight entry and characterizes outside the lock; concurrent
// requests for the same key block on the shared future instead of
// characterizing twice. A failed load propagates its classified
// exception to every waiter and removes the entry, so a later retry
// re-attempts instead of caching the failure.
//
// Eviction: logical-LRU under a byte budget. Each entry is charged its
// Session::memory_bytes() once characterization completes; whenever the
// resident total exceeds the budget, completed least-recently-used
// entries are dropped (in-flight entries and the entry just touched are
// never dropped). Sessions are handed out as shared_ptr, so an evicted
// design stays alive for requests already holding it.
//
// Observability: hits / misses / evictions bump the serve.cache.*
// counters through the ambient obs context of the calling thread (the
// server installs its registry on each connection lane) and are also
// readable directly via stats() for tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "api/session.hpp"

namespace lcsf::serve {

class DesignCache {
 public:
  struct Config {
    /// Resident byte budget for completed sessions. A single session
    /// larger than the budget is kept (the cache never thrashes its
    /// only entry); everything else is evicted LRU-first.
    std::size_t max_bytes = 256u << 20;
  };

  struct Stats {
    std::uint64_t hits = 0;       ///< key found (completed or in-flight)
    std::uint64_t misses = 0;     ///< key absent; this call characterized
    std::uint64_t evictions = 0;  ///< completed entries dropped
  };

  DesignCache() = default;
  explicit DesignCache(Config cfg) : cfg_(cfg) {}
  DesignCache(const DesignCache&) = delete;
  DesignCache& operator=(const DesignCache&) = delete;

  /// The session for `spec`: cached, in-flight (waits), or loaded here.
  /// Throws the load's classified sim::SimulationError on failure --
  /// including kInvalidInput for an unknown circuit or technology, which
  /// is detected while computing the key, before any entry is created.
  std::shared_ptr<api::Session> get(const api::DesignSpec& spec);

  Stats stats() const;
  std::size_t resident_bytes() const;
  std::size_t entries() const;

 private:
  using Future = std::shared_future<std::shared_ptr<api::Session>>;

  struct Entry {
    Future future;
    std::size_t bytes = 0;     ///< 0 while in flight
    std::uint64_t last_use = 0;
    bool ready = false;
  };

  /// Drop completed LRU entries while over budget. `keep` is the key of
  /// the entry just touched, never evicted. Caller holds mu_.
  void evict_locked(const std::string& keep);

  Config cfg_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t tick_ = 0;  ///< logical LRU clock
  Stats stats_;
};

}  // namespace lcsf::serve
