// Cholesky factorization for symmetric positive-definite matrices.
//
// Used by PACT: the internal conductance block G_II of an RC network is SPD,
// and the generalized eigenproblem (C_II, G_II) is reduced to a standard
// symmetric one through L from G_II = L L^T.
#pragma once

#include "numeric/matrix.hpp"

namespace lcsf::numeric {

/// A = L L^T with L lower triangular.
class CholeskyFactorization {
 public:
  /// Throws std::runtime_error if a is not (numerically) positive definite.
  explicit CholeskyFactorization(const Matrix& a);

  std::size_t size() const { return l_.rows(); }
  const Matrix& lower() const { return l_; }

  /// Solve A x = b via two triangular solves.
  Vector solve(const Vector& b) const;
  /// Solve L y = b (forward substitution only).
  Vector solve_lower(const Vector& b) const;
  /// Solve L^T y = b (backward substitution only).
  Vector solve_lower_transposed(const Vector& b) const;
  /// Compute L^{-1} B.
  Matrix solve_lower(const Matrix& b) const;

 private:
  Matrix l_;
};

/// True if a is symmetric within tol (relative to its largest entry).
bool is_symmetric(const Matrix& a, double tol = 1e-12);

}  // namespace lcsf::numeric
