// Minimal dense complex matrix with LU solve.
//
// Needed in two places: evaluating port impedances Z(s) at complex
// frequencies, and inverting the (complex) eigenvector matrix S during the
// pole/residue transformation (paper Eq. 16-20).
#pragma once

#include <complex>
#include <vector>

#include "numeric/matrix.hpp"

namespace lcsf::numeric {

using Complex = std::complex<double>;
using CVector = std::vector<Complex>;

class ComplexMatrix {
 public:
  ComplexMatrix() = default;
  ComplexMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  /// Promote a real matrix.
  explicit ComplexMatrix(const Matrix& m);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Reshape to rows x cols with all entries zero, reusing the heap block
  /// when capacity allows (workspace-pooling primitive).
  void assign(std::size_t rows, std::size_t cols);

  Complex& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  Complex operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  ComplexMatrix& operator+=(const ComplexMatrix& rhs);
  friend ComplexMatrix operator*(const ComplexMatrix& a,
                                 const ComplexMatrix& b);
  CVector operator*(const CVector& x) const;

  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  CVector data_;
};

/// a + scale * b for real matrices promoted to complex (used for G + sC).
ComplexMatrix complex_pencil(const Matrix& g, const Matrix& c, Complex s);

/// Dense complex LU with partial pivoting.
class ComplexLu {
 public:
  /// Empty factorization; only valid for refactor() followed by solves.
  ComplexLu() = default;
  explicit ComplexLu(ComplexMatrix a);

  /// Re-factorize a new matrix, reusing pivot/LU storage when the shape
  /// matches. Bitwise identical to constructing a fresh ComplexLu.
  void refactor(const ComplexMatrix& a);

  CVector solve(const CVector& b) const;
  ComplexMatrix solve(const ComplexMatrix& b) const;
  /// solve() into caller-owned x (must not alias b); bitwise identical.
  void solve_into(const CVector& b, CVector& x) const;
  /// Matrix solve into caller-owned x with caller column scratch.
  void solve_into(const ComplexMatrix& b, ComplexMatrix& x, CVector& col_b,
                  CVector& col_x) const;

 private:
  void factorize();

  ComplexMatrix lu_;
  std::vector<std::size_t> piv_;
};

}  // namespace lcsf::numeric
