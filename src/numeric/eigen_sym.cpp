#include "numeric/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "numeric/cholesky.hpp"
#include "numeric/fp_compare.hpp"

namespace lcsf::numeric {
namespace {

// Sort eigenpairs ascending by value and fix the sign of each vector so the
// entry of largest magnitude is positive. Deterministic ordering/sign is
// essential: the variational MOR library differentiates decompositions.
SymmetricEigen sorted_with_sign_convention(Vector values, Matrix vectors) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return values[a] < values[b];
  });

  SymmetricEigen out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = order[k];
    out.values[k] = values[src];
    Vector v = vectors.col(src);
    std::size_t imax = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (std::abs(v[i]) > std::abs(v[imax])) imax = i;
    }
    if (v[imax] < 0.0) {
      for (double& x : v) x = -x;
    }
    out.vectors.set_col(k, v);
  }
  return out;
}

}  // namespace

SymmetricEigen eigen_symmetric(Matrix a, int max_sweeps) {
  // Jacobi is simple and ultra-robust for tiny systems; the tridiagonal
  // path is O(n^3) with a far smaller constant and wins beyond ~24.
  if (a.rows() <= 24) return eigen_symmetric_jacobi(std::move(a), max_sweeps);
  return eigen_symmetric_tridiagonal(std::move(a));
}

SymmetricEigen eigen_symmetric_jacobi(Matrix a, int max_sweeps) {
  if (!a.square()) throw std::invalid_argument("eigen_symmetric: non-square");
  a.symmetrize();
  const std::size_t n = a.rows();
  Matrix v = Matrix::identity(n);
  if (n == 0) return {Vector{}, v};

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    }
    // The convergence threshold scales with the dimension; the size_t ->
    // double conversion is exact for any practical n (< 2^53).
    const double dim = static_cast<double>(n);
    if (std::sqrt(off) <= 1e-15 * std::max(a.max_abs(), 1e-300) * dim) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (exact_zero(apq)) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Classic Jacobi rotation annihilating a(p,q).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  Vector values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = a(i, i);
  return sorted_with_sign_convention(std::move(values), std::move(v));
}

SymmetricEigen eigen_symmetric_tridiagonal(Matrix a) {
  if (!a.square()) throw std::invalid_argument("eigen_symmetric: non-square");
  a.symmetrize();
  const std::size_t n = a.rows();
  if (n == 0) return {Vector{}, Matrix()};

  // tred2: Householder reduction to tridiagonal form with accumulated
  // transformations (EISPACK/JAMA port). v holds the transformations; d/e
  // the diagonal and subdiagonal.
  Matrix v = a;
  Vector d(n), e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) d[j] = v(n - 1, j);

  for (std::size_t i = n - 1; i > 0; --i) {
    double scale = 0.0;
    double h = 0.0;
    for (std::size_t k = 0; k < i; ++k) scale += std::abs(d[k]);
    if (exact_zero(scale)) {
      e[i] = d[i - 1];
      for (std::size_t j = 0; j < i; ++j) {
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
        v(j, i) = 0.0;
      }
    } else {
      for (std::size_t k = 0; k < i; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      double f = d[i - 1];
      double g = std::sqrt(h);
      if (f > 0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;
      for (std::size_t j = 0; j < i; ++j) e[j] = 0.0;

      for (std::size_t j = 0; j < i; ++j) {
        f = d[j];
        v(j, i) = f;
        g = e[j] + v(j, j) * f;
        for (std::size_t k = j + 1; k <= i - 1; ++k) {
          g += v(k, j) * d[k];
          e[k] += v(k, j) * f;
        }
        e[j] = g;
      }
      f = 0.0;
      for (std::size_t j = 0; j < i; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const double hh = f / (h + h);
      for (std::size_t j = 0; j < i; ++j) e[j] -= hh * d[j];
      for (std::size_t j = 0; j < i; ++j) {
        f = d[j];
        g = e[j];
        for (std::size_t k = j; k <= i - 1; ++k) {
          v(k, j) -= f * e[k] + g * d[k];
        }
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
      }
    }
    d[i] = h;
  }

  // Accumulate transformations.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    v(n - 1, i) = v(i, i);
    v(i, i) = 1.0;
    const double h = d[i + 1];
    if (!exact_zero(h)) {
      for (std::size_t k = 0; k <= i; ++k) d[k] = v(k, i + 1) / h;
      for (std::size_t j = 0; j <= i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k <= i; ++k) g += v(k, i + 1) * v(k, j);
        for (std::size_t k = 0; k <= i; ++k) v(k, j) -= g * d[k];
      }
    }
    for (std::size_t k = 0; k <= i; ++k) v(k, i + 1) = 0.0;
  }
  for (std::size_t j = 0; j < n; ++j) {
    d[j] = v(n - 1, j);
    v(n - 1, j) = 0.0;
  }
  v(n - 1, n - 1) = 1.0;
  e[0] = 0.0;

  // tql2: implicit-shift QL iteration on the tridiagonal form.
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  double f = 0.0;
  double tst1 = 0.0;
  const double eps = std::pow(2.0, -52.0);
  for (std::size_t l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::abs(d[l]) + std::abs(e[l]));
    std::size_t m = l;
    while (m < n) {
      if (std::abs(e[m]) <= eps * tst1) break;
      ++m;
    }
    if (m > l) {
      int iter = 0;
      do {
        if (++iter > 80) {
          throw std::runtime_error("eigen_symmetric: QL failed to converge");
        }
        double g = d[l];
        double p = (d[l + 1] - g) / (2.0 * e[l]);
        double r = std::hypot(p, 1.0);
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const double dl1 = d[l + 1];
        double h = g - d[l];
        for (std::size_t i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        p = d[m];
        double c = 1.0, c2 = c, c3 = c;
        const double el1 = e[l + 1];
        double s = 0.0, s2 = 0.0;
        for (std::size_t i = m; i-- > l;) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = std::hypot(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);
          for (std::size_t k = 0; k < n; ++k) {
            h = v(k, i + 1);
            v(k, i + 1) = s * v(k, i) + c * h;
            v(k, i) = c * v(k, i) - s * h;
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::abs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }

  return sorted_with_sign_convention(std::move(d), std::move(v));
}

SymmetricEigen eigen_symmetric_generalized(const Matrix& a, const Matrix& b,
                                           int max_sweeps) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("generalized eigen: dimension mismatch");
  }
  CholeskyFactorization chol(b);
  // Form M = L^{-1} A L^{-T}; eigenvectors of the original problem are
  // x = L^{-T} y.
  const std::size_t n = a.rows();
  Matrix m(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    // Column j of A L^{-T}: solve L^T z = e_j, then A z — equivalently, take
    // column j of L^{-1} A then apply L^{-T} on the right via transposes.
    m.set_col(j, chol.solve_lower(a.col(j)));
  }
  // m now holds L^{-1} A; apply L^{-T} from the right: (L^{-1} A) L^{-T} =
  // (L^{-1} (L^{-1} A)^T)^T because A is symmetric.
  Matrix mt = m.transposed();
  for (std::size_t j = 0; j < n; ++j) {
    mt.set_col(j, chol.solve_lower(mt.col(j)));
  }
  m = mt.transposed();

  SymmetricEigen std_eig = eigen_symmetric(std::move(m), max_sweeps);
  // Back-transform vectors.
  Matrix x(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    x.set_col(k, chol.solve_lower_transposed(std_eig.vectors.col(k)));
  }
  std_eig.vectors = std::move(x);
  return std_eig;
}

}  // namespace lcsf::numeric
