// Sparse matrix and sparse LU for the SPICE-substitute baseline.
//
// Circuit Jacobians are nearly banded when nodes are numbered along wires,
// so a natural-order (no pivot permutation) row-wise elimination with
// on-the-fly fill tracking is both simple and fast. The simulator
// guarantees nonzero diagonals by eliminating ideal-source nodes and adding
// gmin, and the factorization reports tiny pivots instead of silently
// producing garbage.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "numeric/matrix.hpp"

namespace lcsf::numeric {

/// Row-major sparse matrix with sorted per-row (col, value) entries.
class SparseMatrix {
 public:
  explicit SparseMatrix(std::size_t n = 0) : rows_(n) {}

  std::size_t size() const { return rows_.size(); }

  /// Accumulate a value at (i, j).
  void add(std::size_t i, std::size_t j, double v);

  /// Drop all entries but keep every row's heap block, so re-stamping a
  /// matrix of the same sparsity costs no allocation after the first pass.
  void clear();

  const std::vector<std::pair<std::size_t, double>>& row(std::size_t i) const {
    return rows_[i];
  }

  /// y = A x
  Vector multiply(const Vector& x) const;

  std::size_t nonzeros() const;

  /// Dense copy (tests / tiny systems only).
  Matrix to_dense() const;

 private:
  // rows_[i] kept sorted by column index.
  std::vector<std::vector<std::pair<std::size_t, double>>> rows_;
};

/// LU factorization in natural order (no row permutation). Intended for
/// diagonally-dominant-ish circuit matrices; throws std::runtime_error on a
/// (near-)zero pivot.
class SparseLu {
 public:
  /// Empty factorization; only valid for refactor() followed by solves.
  SparseLu() = default;

  explicit SparseLu(const SparseMatrix& a, double pivot_floor = 1e-300);

  /// Factorize a new matrix, reusing the stored fill pattern when every
  /// structural entry of `a` lies inside it (the common case for Newton
  /// iterations and homotopy retries, where only values change). The fast
  /// path skips the symbolic analysis and allocates nothing; a pattern or
  /// size mismatch silently falls back to a full factorization. Entries the
  /// stored pattern has but `a` lacks participate as explicit zeros, which
  /// leaves every nonzero result bit-identical (only signs of zeros can
  /// differ from a from-scratch factorization). Returns true when the fast
  /// value-only path was taken, false when it fell back to a full
  /// symbolic+numeric factorization (callers use this to count
  /// refactorizations vs. full factorizations; the result is identical
  /// either way).
  bool refactor(const SparseMatrix& a, double pivot_floor = 1e-300);

  std::size_t size() const { return lrows_.size(); }
  Vector solve(const Vector& b) const;
  /// solve() into caller-owned x (may alias b; the loops are in-place).
  void solve_into(const Vector& b, Vector& x) const;

  /// Fill-in statistics (for tests and the micro benches).
  std::size_t factor_nonzeros() const;

 private:
  void factorize(const SparseMatrix& a, double pivot_floor);
  bool refactor_numeric(const SparseMatrix& a, double pivot_floor);

  // lrows_[i]: (col < i, l value); urows_[i]: (col >= i, u value) with the
  // diagonal first.
  std::vector<std::vector<std::pair<std::size_t, double>>> lrows_;
  std::vector<std::vector<std::pair<std::size_t, double>>> urows_;
  // Dense scatter workspace; invariant: all-zero between factorizations
  // (restored even when a pivot failure throws).
  Vector work_;
};

}  // namespace lcsf::numeric
