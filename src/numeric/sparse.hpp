// Sparse matrix and sparse LU for the SPICE-substitute baseline.
//
// Circuit Jacobians are nearly banded when nodes are numbered along wires,
// so a natural-order (no pivot permutation) row-wise elimination with
// on-the-fly fill tracking is both simple and fast. The simulator
// guarantees nonzero diagonals by eliminating ideal-source nodes and adding
// gmin, and the factorization reports tiny pivots instead of silently
// producing garbage.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "numeric/matrix.hpp"

namespace lcsf::numeric {

/// Row-major sparse matrix with sorted per-row (col, value) entries.
class SparseMatrix {
 public:
  explicit SparseMatrix(std::size_t n = 0) : rows_(n) {}

  std::size_t size() const { return rows_.size(); }

  /// Accumulate a value at (i, j).
  void add(std::size_t i, std::size_t j, double v);

  const std::vector<std::pair<std::size_t, double>>& row(std::size_t i) const {
    return rows_[i];
  }

  /// y = A x
  Vector multiply(const Vector& x) const;

  std::size_t nonzeros() const;

  /// Dense copy (tests / tiny systems only).
  Matrix to_dense() const;

 private:
  // rows_[i] kept sorted by column index.
  std::vector<std::vector<std::pair<std::size_t, double>>> rows_;
};

/// LU factorization in natural order (no row permutation). Intended for
/// diagonally-dominant-ish circuit matrices; throws std::runtime_error on a
/// (near-)zero pivot.
class SparseLu {
 public:
  explicit SparseLu(const SparseMatrix& a, double pivot_floor = 1e-300);

  std::size_t size() const { return lrows_.size(); }
  Vector solve(const Vector& b) const;

  /// Fill-in statistics (for tests and the micro benches).
  std::size_t factor_nonzeros() const;

 private:
  // lrows_[i]: (col < i, l value); urows_[i]: (col >= i, u value) with the
  // diagonal first.
  std::vector<std::vector<std::pair<std::size_t, double>>> lrows_;
  std::vector<std::vector<std::pair<std::size_t, double>>> urows_;
};

}  // namespace lcsf::numeric
