// General real (nonsymmetric) eigensolver.
//
// The pole/residue transformation of the reduced-order macromodel (paper
// Eq. 14-20) diagonalizes T = -Gr^{-1} Cr, which is a general real matrix
// with complex-conjugate eigenpairs. We implement the classical EISPACK
// pipeline: Householder reduction to upper Hessenberg form followed by the
// Francis implicit double-shift QR iteration with accumulated
// transformations and eigenvector back-substitution.
#pragma once

#include <complex>
#include <vector>

#include "numeric/matrix.hpp"

namespace lcsf::numeric {

struct RealEigen {
  /// Eigenvalues; complex pairs appear adjacently as (a+bi, a-bi).
  std::vector<std::complex<double>> values;
  /// Eigenvector matrix in EISPACK packed real storage: for a real
  /// eigenvalue k the vector is column k; for a complex pair (k, k+1) the
  /// vector of values[k] is col(k) + i*col(k+1) and its conjugate belongs to
  /// values[k+1].
  Matrix packed_vectors;

  /// Unpack eigenvector k as a complex vector.
  std::vector<std::complex<double>> vector(std::size_t k) const;
  /// vector() into a caller-owned buffer (no allocation once warm).
  void vector_into(std::size_t k, std::vector<std::complex<double>>& v) const;
};

/// Reusable buffers for eigen_real_into: Hessenberg/transform matrices plus
/// eigenvalue and Householder scratch vectors. A default-constructed
/// instance warms up on first use and allocates nothing afterwards for
/// same-size problems.
struct RealEigenScratch {
  Matrix h;    // Hessenberg form, later quasi-triangular
  Matrix v;    // accumulated transformations -> eigenvectors
  Vector d;    // real parts of eigenvalues
  Vector e;    // imaginary parts of eigenvalues
  Vector ort;  // Householder scratch
};

/// Full eigendecomposition of a general real square matrix.
/// Throws std::runtime_error if the QR iteration fails to converge.
RealEigen eigen_real(Matrix a);

/// eigen_real writing into a caller-owned result, with all intermediate
/// storage drawn from `scratch`. Bitwise identical to eigen_real().
void eigen_real_into(const Matrix& a, RealEigenScratch& scratch,
                     RealEigen& out);

/// Eigenvalues only (same algorithm, vectors skipped by the caller).
std::vector<std::complex<double>> eigenvalues_real(const Matrix& a);

}  // namespace lcsf::numeric
