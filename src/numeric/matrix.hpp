// Dense real matrix/vector kernel used by every other module.
//
// The framework's linear systems are small-to-medium dense blocks (MNA
// matrices of logic stages, reduced-order macromodels, Krylov bases), so a
// straightforward row-major dense matrix with value semantics is the right
// substrate: no sparse bookkeeping, predictable memory, and trivially
// testable numerics.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace lcsf::numeric {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles with value semantics.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  bool square() const { return rows_ == cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Bounds-checked access (used by tests and debug paths).
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Resident heap footprint (capacity, not size): the accounting unit of
  /// byte-budgeted caches holding characterized artifacts.
  std::size_t memory_bytes() const {
    return sizeof(*this) + data_.capacity() * sizeof(double);
  }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// this += a * x without materializing the scaled temporary. Produces
  /// bitwise-identical results to `*this += a * x` (same multiply/add per
  /// element, and the build does not enable FMA contraction).
  Matrix& axpy(double a, const Matrix& x);

  /// Reshape to rows x cols and set every entry to fill, reusing the
  /// existing heap block whenever capacity allows. The workspace-pooling
  /// primitive: hot loops call assign() instead of constructing a Matrix.
  void assign(std::size_t rows, std::size_t cols, double fill = 0.0);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

  /// Matrix-matrix product (dimensions checked).
  friend Matrix operator*(const Matrix& a, const Matrix& b);
  /// Matrix-vector product.
  friend Vector operator*(const Matrix& a, const Vector& x);

  Matrix transposed() const;

  /// Extract the sub-block rows [r0, r0+nr) x cols [c0, c0+nc).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;
  /// Overwrite the sub-block starting at (r0, c0) with b.
  void set_block(std::size_t r0, std::size_t c0, const Matrix& b);

  Vector row(std::size_t i) const;
  Vector col(std::size_t j) const;
  void set_col(std::size_t j, const Vector& v);

  /// Frobenius norm.
  double norm() const;
  /// Largest absolute entry.
  double max_abs() const;

  /// Force exact symmetry: A <- (A + A^T)/2. Used after finite-difference
  /// perturbations of symmetric MNA matrices.
  void symmetrize();

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// x^T y
double dot(const Vector& x, const Vector& y);
/// Euclidean norm.
double norm(const Vector& x);
/// Largest absolute entry; 0 for empty vectors.
double max_abs(const Vector& x);
/// y <- y + a*x
void axpy(double a, const Vector& x, Vector& y);
/// A^T * x
Vector transposed_times(const Matrix& a, const Vector& x);

/// c <- a * b, reusing c's storage (c must not alias a or b). Loop order and
/// zero-skip match operator*(Matrix, Matrix) exactly, so results are bitwise
/// identical to the allocating path.
void gemm_into(const Matrix& a, const Matrix& b, Matrix& c);
/// y <- a * x, reusing y's storage (y must not alias x). Bitwise identical
/// to operator*(Matrix, Vector).
void mul_into(const Matrix& a, const Vector& x, Vector& y);

// ---- Strided-batch (SoA) kernels for the batched Monte-Carlo hot path.
//
// Lane-inner layout: element i of lane l lives at soa[i * lanes + l], so
// the innermost loop runs over independent lanes with unit stride (see
// numeric/simd.hpp). Each kernel performs, per lane, exactly the IEEE
// operation sequence of its scalar counterpart, so batched results are
// bitwise identical to running the scalar kernel per lane.

/// y[k] += a * x[k] over n contiguous entries -- the Matrix::axpy /
/// axpy(Vector) inner loop on raw SoA storage.
void axpy_batch(double a, const double* x, double* y, std::size_t n);

/// Batched mat-vec over `lanes` SoA lanes with per-lane matrices:
/// y[i*lanes+l] = sum_j a[l](i,j) * x[j*lanes+l], accumulated in ascending
/// j per lane (the mul_into order). All a[l] must be rows x cols.
void mul_into_batch(const Matrix* const* a, std::size_t rows,
                    std::size_t cols, const double* x, double* y,
                    std::size_t lanes);

/// Batched gemm: c[l] <- a[l] * b[l] for each lane, with the loop order
/// and exact-zero skip of gemm_into (bitwise identical per lane).
void gemm_into_batch(const Matrix* const* a, const Matrix* const* b,
                     Matrix* const* c, std::size_t lanes);

/// Congruence product X^T A X — the kernel of projection-based MOR.
Matrix congruence(const Matrix& x, const Matrix& a);

/// Relative difference ||a-b|| / max(||a||, ||b||, eps) in Frobenius norm.
double relative_difference(const Matrix& a, const Matrix& b);

}  // namespace lcsf::numeric
