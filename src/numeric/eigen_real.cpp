#include "numeric/eigen_real.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/fp_compare.hpp"

namespace lcsf::numeric {
namespace {

// Complex scalar division (a+bi)/(c+di) avoiding overflow (Smith's method).
void cdiv(double ar, double ai, double br, double bi, double& cr, double& ci) {
  if (std::abs(br) > std::abs(bi)) {
    const double r = bi / br;
    const double d = br + r * bi;
    cr = (ar + r * ai) / d;
    ci = (ai - r * ar) / d;
  } else {
    const double r = br / bi;
    const double d = bi + r * br;
    cr = (r * ar + ai) / d;
    ci = (r * ai - ar) / d;
  }
}

// State for the EISPACK orthes/hqr2 pipeline operating on n x n storage.
// All buffers live in a caller-owned RealEigenScratch so repeated
// same-size decompositions reuse one set of heap blocks.
struct Hqr2Workspace {
  std::size_t n;
  Matrix& h;    // Hessenberg form, later quasi-triangular
  Matrix& v;    // accumulated transformations -> eigenvectors
  Vector& d;    // real parts of eigenvalues
  Vector& e;    // imaginary parts of eigenvalues
  Vector& ort;  // Householder scratch

  Hqr2Workspace(const Matrix& a, RealEigenScratch& s)
      : n(a.rows()), h(s.h), v(s.v), d(s.d), e(s.e), ort(s.ort) {
    h = a;
    v.assign(n, n);
    for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;
    d.assign(n, 0.0);
    e.assign(n, 0.0);
    ort.assign(n, 0.0);
  }

  // Householder reduction of h to upper Hessenberg with accumulation in v.
  void orthes() {
    if (n < 3) return;
    const std::size_t low = 0;
    const std::size_t high = n - 1;

    for (std::size_t m = low + 1; m <= high - 1; ++m) {
      double scale = 0.0;
      for (std::size_t i = m; i <= high; ++i) scale += std::abs(h(i, m - 1));
      if (exact_zero(scale)) continue;

      double hsum = 0.0;
      for (std::size_t i = high + 1; i-- > m;) {
        ort[i] = h(i, m - 1) / scale;
        hsum += ort[i] * ort[i];
      }
      double g = std::sqrt(hsum);
      if (ort[m] > 0.0) g = -g;
      hsum -= ort[m] * g;
      ort[m] -= g;

      // Apply Householder from both sides: (I - u u^T / hsum) H (I - ...).
      for (std::size_t j = m; j < n; ++j) {
        double f = 0.0;
        for (std::size_t i = high + 1; i-- > m;) f += ort[i] * h(i, j);
        f /= hsum;
        for (std::size_t i = m; i <= high; ++i) h(i, j) -= f * ort[i];
      }
      for (std::size_t i = 0; i <= high; ++i) {
        double f = 0.0;
        for (std::size_t j = high + 1; j-- > m;) f += ort[j] * h(i, j);
        f /= hsum;
        for (std::size_t j = m; j <= high; ++j) h(i, j) -= f * ort[j];
      }
      ort[m] *= scale;
      h(m, m - 1) = scale * g;
    }

    // Accumulate transformations into v.
    for (std::size_t m = high - 1; m >= low + 1; --m) {
      if (!exact_zero(h(m, m - 1))) {
        for (std::size_t i = m + 1; i <= high; ++i) ort[i] = h(i, m - 1);
        for (std::size_t j = m; j <= high; ++j) {
          double g = 0.0;
          for (std::size_t i = m; i <= high; ++i) g += ort[i] * v(i, j);
          // double division avoids possible underflow (EISPACK note).
          g = (g / ort[m]) / h(m, m - 1);
          for (std::size_t i = m; i <= high; ++i) v(i, j) += g * ort[i];
        }
      }
      if (m == low + 1) break;
    }
  }

  // Francis double-shift QR on the Hessenberg matrix, then eigenvector
  // back-substitution. Port of the EISPACK hqr2 routine.
  void hqr2() {
    const int nn = static_cast<int>(n);
    int nIter = nn - 1;
    const int low = 0;
    const int high = nn - 1;
    const double eps = std::pow(2.0, -52.0);
    double exshift = 0.0;
    double p = 0, q = 0, r = 0, s = 0, z = 0, t, w, x, y;

    auto H = [&](int i, int j) -> double& {
      return h(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    };
    auto V = [&](int i, int j) -> double& {
      return v(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    };

    double norm = 0.0;
    for (int i = 0; i < nn; ++i) {
      for (int j = std::max(i - 1, 0); j < nn; ++j) norm += std::abs(H(i, j));
    }

    int iter = 0;
    int total_iter = 0;
    while (nIter >= low) {
      if (++total_iter > 30 * nn * nn + 1000) {
        throw std::runtime_error("eigen_real: QR iteration failed");
      }
      // Look for a single small subdiagonal element.
      int l = nIter;
      while (l > low) {
        s = std::abs(H(l - 1, l - 1)) + std::abs(H(l, l));
        if (exact_zero(s)) s = norm;
        if (std::abs(H(l, l - 1)) < eps * s) break;
        --l;
      }

      if (l == nIter) {
        // One root found.
        H(nIter, nIter) += exshift;
        d[static_cast<std::size_t>(nIter)] = H(nIter, nIter);
        e[static_cast<std::size_t>(nIter)] = 0.0;
        --nIter;
        iter = 0;
      } else if (l == nIter - 1) {
        // Two roots found.
        w = H(nIter, nIter - 1) * H(nIter - 1, nIter);
        p = (H(nIter - 1, nIter - 1) - H(nIter, nIter)) / 2.0;
        q = p * p + w;
        z = std::sqrt(std::abs(q));
        H(nIter, nIter) += exshift;
        H(nIter - 1, nIter - 1) += exshift;
        x = H(nIter, nIter);

        if (q >= 0) {
          // Real pair.
          z = (p >= 0) ? p + z : p - z;
          d[static_cast<std::size_t>(nIter - 1)] = x + z;
          d[static_cast<std::size_t>(nIter)] =
              (!exact_zero(z)) ? x - w / z : d[static_cast<std::size_t>(nIter - 1)];
          e[static_cast<std::size_t>(nIter - 1)] = 0.0;
          e[static_cast<std::size_t>(nIter)] = 0.0;
          x = H(nIter, nIter - 1);
          s = std::abs(x) + std::abs(z);
          p = x / s;
          q = z / s;
          r = std::sqrt(p * p + q * q);
          p /= r;
          q /= r;
          for (int j = nIter - 1; j < nn; ++j) {
            z = H(nIter - 1, j);
            H(nIter - 1, j) = q * z + p * H(nIter, j);
            H(nIter, j) = q * H(nIter, j) - p * z;
          }
          for (int i = 0; i <= nIter; ++i) {
            z = H(i, nIter - 1);
            H(i, nIter - 1) = q * z + p * H(i, nIter);
            H(i, nIter) = q * H(i, nIter) - p * z;
          }
          for (int i = low; i <= high; ++i) {
            z = V(i, nIter - 1);
            V(i, nIter - 1) = q * z + p * V(i, nIter);
            V(i, nIter) = q * V(i, nIter) - p * z;
          }
        } else {
          // Complex pair.
          d[static_cast<std::size_t>(nIter - 1)] = x + p;
          d[static_cast<std::size_t>(nIter)] = x + p;
          e[static_cast<std::size_t>(nIter - 1)] = z;
          e[static_cast<std::size_t>(nIter)] = -z;
        }
        nIter -= 2;
        iter = 0;
      } else {
        // No convergence yet; form shift.
        x = H(nIter, nIter);
        y = 0.0;
        w = 0.0;
        if (l < nIter) {
          y = H(nIter - 1, nIter - 1);
          w = H(nIter, nIter - 1) * H(nIter - 1, nIter);
        }

        if (iter == 10 || iter == 20) {
          // Exceptional shift.
          exshift += x;
          for (int i = low; i <= nIter; ++i) H(i, i) -= x;
          s = std::abs(H(nIter, nIter - 1)) + std::abs(H(nIter - 1, nIter - 2));
          x = y = 0.75 * s;
          w = -0.4375 * s * s;
        }
        ++iter;

        // Look for two consecutive small subdiagonal elements.
        int m = nIter - 2;
        while (m >= l) {
          z = H(m, m);
          r = x - z;
          s = y - z;
          p = (r * s - w) / H(m + 1, m) + H(m, m + 1);
          q = H(m + 1, m + 1) - z - r - s;
          r = H(m + 2, m + 1);
          s = std::abs(p) + std::abs(q) + std::abs(r);
          p /= s;
          q /= s;
          r /= s;
          if (m == l) break;
          if (std::abs(H(m, m - 1)) * (std::abs(q) + std::abs(r)) <
              eps * (std::abs(p) * (std::abs(H(m - 1, m - 1)) + std::abs(z) +
                                    std::abs(H(m + 1, m + 1))))) {
            break;
          }
          --m;
        }

        for (int i = m + 2; i <= nIter; ++i) {
          H(i, i - 2) = 0.0;
          if (i > m + 2) H(i, i - 3) = 0.0;
        }

        // Double QR step on rows l..nIter, columns m..nIter.
        for (int k = m; k <= nIter - 1; ++k) {
          const bool notlast = (k != nIter - 1);
          if (k != m) {
            p = H(k, k - 1);
            q = H(k + 1, k - 1);
            r = notlast ? H(k + 2, k - 1) : 0.0;
            x = std::abs(p) + std::abs(q) + std::abs(r);
            if (exact_zero(x)) continue;
            p /= x;
            q /= x;
            r /= x;
          }

          s = std::sqrt(p * p + q * q + r * r);
          if (p < 0) s = -s;
          if (s != 0) {
            if (k != m) {
              H(k, k - 1) = -s * x;
            } else if (l != m) {
              H(k, k - 1) = -H(k, k - 1);
            }
            p += s;
            x = p / s;
            y = q / s;
            z = r / s;
            q /= p;
            r /= p;

            // Row modification.
            for (int j = k; j < nn; ++j) {
              p = H(k, j) + q * H(k + 1, j);
              if (notlast) {
                p += r * H(k + 2, j);
                H(k + 2, j) -= p * z;
              }
              H(k, j) -= p * x;
              H(k + 1, j) -= p * y;
            }
            // Column modification.
            for (int i = 0; i <= std::min(nIter, k + 3); ++i) {
              p = x * H(i, k) + y * H(i, k + 1);
              if (notlast) {
                p += z * H(i, k + 2);
                H(i, k + 2) -= p * r;
              }
              H(i, k) -= p;
              H(i, k + 1) -= p * q;
            }
            // Accumulate transformations.
            for (int i = low; i <= high; ++i) {
              p = x * V(i, k) + y * V(i, k + 1);
              if (notlast) {
                p += z * V(i, k + 2);
                V(i, k + 2) -= p * r;
              }
              V(i, k) -= p;
              V(i, k + 1) -= p * q;
            }
          }
        }
      }
    }

    // Back-substitute to find vectors of the quasi-triangular form.
    if (exact_zero(norm)) return;

    for (int k = nn - 1; k >= 0; --k) {
      p = d[static_cast<std::size_t>(k)];
      q = e[static_cast<std::size_t>(k)];

      if (exact_zero(q)) {
        // Real eigenvector.
        int l = k;
        H(k, k) = 1.0;
        for (int i = k - 1; i >= 0; --i) {
          w = H(i, i) - p;
          r = 0.0;
          for (int j = l; j <= k; ++j) r += H(i, j) * H(j, k);
          if (e[static_cast<std::size_t>(i)] < 0.0) {
            z = w;
            s = r;
          } else {
            l = i;
            if (exact_zero(e[static_cast<std::size_t>(i)])) {
              H(i, k) = (!exact_zero(w)) ? -r / w : -r / (eps * norm);
            } else {
              // Solve the 2x2 real block.
              x = H(i, i + 1);
              y = H(i + 1, i);
              q = (d[static_cast<std::size_t>(i)] - p) *
                      (d[static_cast<std::size_t>(i)] - p) +
                  e[static_cast<std::size_t>(i)] *
                      e[static_cast<std::size_t>(i)];
              t = (x * s - z * r) / q;
              H(i, k) = t;
              H(i + 1, k) = (std::abs(x) > std::abs(z)) ? (-r - w * t) / x
                                                        : (-s - y * t) / z;
            }
            // Overflow control.
            t = std::abs(H(i, k));
            if ((eps * t) * t > 1) {
              for (int j = i; j <= k; ++j) H(j, k) /= t;
            }
          }
        }
      } else if (q < 0.0) {
        // Complex eigenvector (for the pair k-1, k).
        int l = k - 1;
        if (std::abs(H(k, k - 1)) > std::abs(H(k - 1, k))) {
          H(k - 1, k - 1) = q / H(k, k - 1);
          H(k - 1, k) = -(H(k, k) - p) / H(k, k - 1);
        } else {
          double cr, ci;
          cdiv(0.0, -H(k - 1, k), H(k - 1, k - 1) - p, q, cr, ci);
          H(k - 1, k - 1) = cr;
          H(k - 1, k) = ci;
        }
        H(k, k - 1) = 0.0;
        H(k, k) = 1.0;
        for (int i = k - 2; i >= 0; --i) {
          double ra = 0.0, sa = 0.0;
          for (int j = l; j <= k; ++j) {
            ra += H(i, j) * H(j, k - 1);
            sa += H(i, j) * H(j, k);
          }
          w = H(i, i) - p;

          if (e[static_cast<std::size_t>(i)] < 0.0) {
            z = w;
            r = ra;
            s = sa;
          } else {
            l = i;
            if (exact_zero(e[static_cast<std::size_t>(i)])) {
              double cr, ci;
              cdiv(-ra, -sa, w, q, cr, ci);
              H(i, k - 1) = cr;
              H(i, k) = ci;
            } else {
              // Solve complex 2x2 block.
              x = H(i, i + 1);
              y = H(i + 1, i);
              double vr = (d[static_cast<std::size_t>(i)] - p) *
                              (d[static_cast<std::size_t>(i)] - p) +
                          e[static_cast<std::size_t>(i)] *
                              e[static_cast<std::size_t>(i)] -
                          q * q;
              const double vi = (d[static_cast<std::size_t>(i)] - p) * 2.0 * q;
              if (exact_zero(vr) && exact_zero(vi)) {
                vr = eps * norm *
                     (std::abs(w) + std::abs(q) + std::abs(x) + std::abs(y) +
                      std::abs(z));
              }
              double cr, ci;
              cdiv(x * r - z * ra + q * sa, x * s - z * sa - q * ra, vr, vi,
                   cr, ci);
              H(i, k - 1) = cr;
              H(i, k) = ci;
              if (std::abs(x) > (std::abs(z) + std::abs(q))) {
                H(i + 1, k - 1) =
                    (-ra - w * H(i, k - 1) + q * H(i, k)) / x;
                H(i + 1, k) = (-sa - w * H(i, k) - q * H(i, k - 1)) / x;
              } else {
                cdiv(-r - y * H(i, k - 1), -s - y * H(i, k), z, q, cr, ci);
                H(i + 1, k - 1) = cr;
                H(i + 1, k) = ci;
              }
            }
            // Overflow control.
            t = std::max(std::abs(H(i, k - 1)), std::abs(H(i, k)));
            if ((eps * t) * t > 1) {
              for (int j = i; j <= k; ++j) {
                H(j, k - 1) /= t;
                H(j, k) /= t;
              }
            }
          }
        }
      }
    }

    // Multiply by transformation matrix to get vectors of the original
    // matrix.
    for (int j = nn - 1; j >= low; --j) {
      for (int i = low; i <= high; ++i) {
        z = 0.0;
        for (int k = low; k <= std::min(j, high); ++k) {
          z += V(i, k) * H(k, j);
        }
        V(i, j) = z;
      }
    }
  }
};

}  // namespace

std::vector<std::complex<double>> RealEigen::vector(std::size_t k) const {
  std::vector<std::complex<double>> v;
  vector_into(k, v);
  return v;
}

void RealEigen::vector_into(std::size_t k,
                            std::vector<std::complex<double>>& v) const {
  const std::size_t n = packed_vectors.rows();
  v.resize(n);
  if (exact_zero(values[k].imag())) {
    for (std::size_t i = 0; i < n; ++i) v[i] = packed_vectors(i, k);
  } else if (values[k].imag() > 0.0) {
    // First of a conjugate pair: col(k) + i col(k+1).
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = {packed_vectors(i, k), packed_vectors(i, k + 1)};
    }
  } else {
    // Second of the pair: conjugate of col(k-1) + i col(k).
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = {packed_vectors(i, k - 1), -packed_vectors(i, k)};
    }
  }
}

void eigen_real_into(const Matrix& a, RealEigenScratch& scratch,
                     RealEigen& out) {
  if (!a.square()) throw std::invalid_argument("eigen_real: non-square");
  const std::size_t n = a.rows();
  if (n == 0) {
    out.values.clear();
    out.packed_vectors.assign(0, 0);
    return;
  }
  if (n == 1) {
    out.values.assign(1, std::complex<double>(a(0, 0)));
    out.packed_vectors.assign(1, 1, 1.0);
    return;
  }

  Hqr2Workspace ws(a, scratch);
  ws.orthes();
  // Zero out the sub-Hessenberg entries so hqr2 sees an exact Hessenberg
  // matrix (orthes leaves Householder vectors there).
  for (std::size_t i = 2; i < n; ++i) {
    for (std::size_t j = 0; j + 1 < i; ++j) ws.h(i, j) = 0.0;
  }
  ws.hqr2();

  out.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.values[i] = {ws.d[i], ws.e[i]};
  out.packed_vectors = ws.v;
}

RealEigen eigen_real(Matrix a) {
  RealEigenScratch scratch;
  RealEigen out;
  eigen_real_into(a, scratch, out);
  return out;
}

std::vector<std::complex<double>> eigenvalues_real(const Matrix& a) {
  return eigen_real(a).values;
}

}  // namespace lcsf::numeric
