// Deterministic modified Gram-Schmidt orthonormalization.
//
// Block Arnoldi (PRIMA) builds its projection basis through MGS. The
// variational MOR library differentiates bases produced at perturbed
// parameter values, so the orthonormalization must be continuous in its
// input: plain MGS with first-nonzero-positive sign normalization is, as
// long as no column is (near-)deflated, which deflate() reports explicitly.
#pragma once

#include <cstddef>
#include <optional>

#include "numeric/matrix.hpp"

namespace lcsf::numeric {

struct OrthonormalizeResult {
  Matrix q;                   ///< orthonormal columns spanning the input
  std::size_t rank = 0;       ///< columns kept
  std::size_t deflated = 0;   ///< columns dropped as linearly dependent
};

/// Orthonormalize the columns of a against themselves and (optionally)
/// against the columns of an existing orthonormal basis `against`.
/// Columns whose residual norm falls below tol * original-norm are dropped.
OrthonormalizeResult orthonormalize(const Matrix& a,
                                    const Matrix* against = nullptr,
                                    double tol = 1e-10);

/// Max |Q^T Q - I| — orthogonality defect, used by tests.
double orthogonality_defect(const Matrix& q);

}  // namespace lcsf::numeric
