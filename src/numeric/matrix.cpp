#include "numeric/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "numeric/fp_compare.hpp"
#include "numeric/simd.hpp"

namespace lcsf::numeric {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::at(std::size_t i, std::size_t j) {
  if (i >= rows_ || j >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(i, j);
}

double Matrix::at(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(i, j);
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix +=: dimension mismatch");
  }
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix -=: dimension mismatch");
  }
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::axpy(double a, const Matrix& x) {
  if (rows_ != x.rows_ || cols_ != x.cols_) {
    throw std::invalid_argument("Matrix::axpy: dimension mismatch");
  }
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += a * x.data_[k];
  return *this;
}

void Matrix::assign(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("Matrix *: dimension mismatch");
  }
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (exact_zero(aik)) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("Matrix * Vector: dimension mismatch");
  }
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  if (r0 + nr > rows_ || c0 + nc > cols_) {
    throw std::out_of_range("Matrix::block");
  }
  Matrix b(nr, nc);
  for (std::size_t i = 0; i < nr; ++i) {
    for (std::size_t j = 0; j < nc; ++j) b(i, j) = (*this)(r0 + i, c0 + j);
  }
  return b;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& b) {
  if (r0 + b.rows() > rows_ || c0 + b.cols() > cols_) {
    throw std::out_of_range("Matrix::set_block");
  }
  for (std::size_t i = 0; i < b.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      (*this)(r0 + i, c0 + j) = b(i, j);
    }
  }
}

Vector Matrix::row(std::size_t i) const {
  Vector v(cols_);
  for (std::size_t j = 0; j < cols_; ++j) v[j] = (*this)(i, j);
  return v;
}

Vector Matrix::col(std::size_t j) const {
  Vector v(rows_);
  for (std::size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
  return v;
}

void Matrix::set_col(std::size_t j, const Vector& v) {
  if (v.size() != rows_) throw std::invalid_argument("Matrix::set_col");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

void Matrix::symmetrize() {
  if (!square()) throw std::logic_error("symmetrize: non-square matrix");
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      const double avg = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = avg;
      (*this)(j, i) = avg;
    }
  }
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < cols_; ++j) {
      os << (*this)(i, j) << (j + 1 < cols_ ? ", " : "");
    }
    os << (i + 1 < rows_ ? ";\n" : "]");
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  return os << m.to_string();
}

double dot(const Vector& x, const Vector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double norm(const Vector& x) { return std::sqrt(dot(x, x)); }

double max_abs(const Vector& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

void axpy(double a, const Vector& x, Vector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

Vector transposed_times(const Matrix& a, const Vector& x) {
  if (a.rows() != x.size()) {
    throw std::invalid_argument("transposed_times: dimension mismatch");
  }
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (exact_zero(xi)) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += a(i, j) * xi;
  }
  return y;
}

void gemm_into(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("gemm_into: dimension mismatch");
  }
  c.assign(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (exact_zero(aik)) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
}

void mul_into(const Matrix& a, const Vector& x, Vector& y) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("mul_into: dimension mismatch");
  }
  y.resize(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
}

void axpy_batch(double a, const double* x, double* y, std::size_t n) {
  LCSF_SIMD_LOOP
  for (std::size_t k = 0; k < n; ++k) y[k] += a * x[k];
}

void mul_into_batch(const Matrix* const* a, std::size_t rows,
                    std::size_t cols, const double* x, double* y,
                    std::size_t lanes) {
  // Per lane this is exactly mul_into's i-outer / ascending-j accumulation;
  // lanes are independent, so the lane-inner reorder cannot change any bit.
  for (std::size_t i = 0; i < rows; ++i) {
    double* yi = y + i * lanes;
    LCSF_SIMD_LOOP
    for (std::size_t l = 0; l < lanes; ++l) yi[l] = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      const double* xj = x + j * lanes;
      for (std::size_t l = 0; l < lanes; ++l) {
        yi[l] += (*a[l])(i, j) * xj[l];
      }
    }
  }
}

void gemm_into_batch(const Matrix* const* a, const Matrix* const* b,
                     Matrix* const* c, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    gemm_into(*a[l], *b[l], *c[l]);
  }
}

Matrix congruence(const Matrix& x, const Matrix& a) {
  return x.transposed() * (a * x);
}

double relative_difference(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("relative_difference: dimension mismatch");
  }
  const double denom = std::max({a.norm(), b.norm(), 1e-300});
  return (a - b).norm() / denom;
}

}  // namespace lcsf::numeric
