// Symmetric (and generalized symmetric-definite) eigensolvers.
//
// Cyclic Jacobi rotation: unconditionally stable, perfectly adequate for the
// modest sizes appearing here (PACT internal blocks after reduction, PCA
// covariance matrices with tens of parameters).
#pragma once

#include "numeric/matrix.hpp"

namespace lcsf::numeric {

struct SymmetricEigen {
  Vector values;   ///< ascending eigenvalues
  Matrix vectors;  ///< column k is the eigenvector of values[k]
};

/// Eigendecomposition of a symmetric matrix (symmetry is enforced by
/// averaging). Eigenvalues ascend; eigenvectors are orthonormal and have a
/// deterministic sign convention (largest-magnitude component positive) so
/// finite-difference perturbation studies see continuous bases.
///
/// Dispatches to Householder tridiagonalization + implicit QL (fast, the
/// default above a small-size threshold) or cyclic Jacobi (tiny inputs).
SymmetricEigen eigen_symmetric(Matrix a, int max_sweeps = 64);

/// Cyclic Jacobi variant (exposed for tests/benches).
SymmetricEigen eigen_symmetric_jacobi(Matrix a, int max_sweeps = 64);

/// Householder tred2 + implicit-shift tql2 variant (exposed for
/// tests/benches).
SymmetricEigen eigen_symmetric_tridiagonal(Matrix a);

/// Generalized symmetric-definite problem A x = lambda B x with B SPD,
/// reduced via B = L L^T to the standard problem for L^{-1} A L^{-T}.
/// Returned vectors are B-orthonormal: X^T B X = I.
SymmetricEigen eigen_symmetric_generalized(const Matrix& a, const Matrix& b,
                                           int max_sweeps = 64);

}  // namespace lcsf::numeric
