// Portable vectorization hint for the strided-batch (SoA) kernels.
//
// The batched Monte-Carlo hot path stores K samples lane-inner
// (x[i * lanes + l]), so its innermost loops run over independent lanes
// with unit stride -- exactly the shape compilers auto-vectorize. The
// LCSF_SIMD_LOOP macro annotates those loops:
//
//   * with the opt-in LCSF_SIMD cmake knob (adds -fopenmp-simd and the
//     LCSF_SIMD define), it expands to `#pragma omp simd`;
//   * otherwise, on GCC, to `#pragma GCC ivdep` (assert no loop-carried
//     dependence; the cost model still decides);
//   * otherwise to nothing.
//
// No intrinsics anywhere: correctness never depends on the hint, and the
// per-lane IEEE operation sequence is identical either way (the build does
// not enable FMA contraction), so batched results stay bitwise equal to
// the scalar path. See docs/performance.md.
#pragma once

#if defined(LCSF_SIMD)
#define LCSF_SIMD_LOOP _Pragma("omp simd")
#elif defined(__GNUC__) && !defined(__clang__)
#define LCSF_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define LCSF_SIMD_LOOP
#endif
