// Sanctioned exact floating-point comparisons.
//
// Raw `==`/`!=` against floating-point literals is forbidden tree-wide
// by the lcsf_lint rule `float-equality`: in a framework whose whole
// point is propagating parametric fluctuations through long numerical
// chains (PAPER.md Sec. 3-4), an accidental exact comparison on a
// computed quantity is a silent statistics-corrupting bug. Genuinely
// exact comparisons are still needed -- zero-pivot detection, sparsity
// skips, sentinel values written verbatim and never recomputed -- so
// they go through these named helpers, which document the intent at
// the call site and keep the raw operator out of the rule's sight
// (the rule is textual and flags literal operands; these helpers
// compare two already-typed doubles, which is exactly the case the
// rule cannot judge and a human reviewer must).
//
// These are *bitwise-style* comparisons (IEEE `==` semantics: -0 == +0,
// NaN compares unequal to everything). For tolerance comparisons use an
// explicit |a - b| <= tol at the call site; this header deliberately
// offers none, because the right tolerance is always problem-specific.
#pragma once

namespace lcsf::numeric {

/// Intentional exact equality of two doubles (IEEE `==`).
constexpr bool exact_eq(double a, double b) { return a == b; }

/// Intentional exact test against zero. Matches both +0 and -0; the
/// canonical use is "this entry was never written / is structurally
/// zero, skip it" in sparse kernels and pivot checks.
constexpr bool exact_zero(double x) { return exact_eq(x, 0.0); }

}  // namespace lcsf::numeric
