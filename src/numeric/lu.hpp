// LU factorization with partial pivoting.
//
// The framework factorizes each effective-load admittance matrix once and
// back-substitutes many times (successive-chord iterations, pole/residue
// extraction, moment computation), so the factorization is a stored object.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/matrix.hpp"

namespace lcsf::numeric {

/// PA = LU factorization with partial (row) pivoting.
class LuFactorization {
 public:
  /// Empty factorization; only valid for refactor() followed by solves.
  /// Exists so workspaces can own a reusable slot before the first sample.
  LuFactorization() = default;

  /// Factorizes a (must be square). Throws std::runtime_error on exact
  /// singularity; near-singularity is reported via condition_estimate().
  explicit LuFactorization(Matrix a);

  /// Re-run the factorization on a new matrix, reusing the pivot vector and
  /// the LU storage when the shape matches (no allocation after warm-up).
  /// Identical elimination to the constructor, so results are bitwise equal.
  void refactor(const Matrix& a);

  std::size_t size() const { return lu_.rows(); }

  /// Solve A x = b.
  Vector solve(const Vector& b) const;
  /// Solve A x = b into caller-owned x (must not alias b). Bitwise identical
  /// to solve(); x is resized but never reallocated once warm.
  void solve_into(const Vector& b, Vector& x) const;
  /// Solve A X = B column-by-column.
  Matrix solve(const Matrix& b) const;
  /// Matrix solve into caller-owned x with caller column scratch; bitwise
  /// identical to solve(Matrix), allocation-free once warm.
  void solve_into(const Matrix& b, Matrix& x, Vector& col_b,
                  Vector& col_x) const;
  /// Solve A^T x = b (needed for adjoint sensitivity computations).
  Vector solve_transposed(const Vector& b) const;
  /// Strided-batch solve for SoA lane storage: element i of the RHS lives
  /// at b[i*stride] and the solution is scattered to x[i*stride] (b and x
  /// must not alias). Gathers through the caller's dense scratch vectors,
  /// runs solve_into, and scatters back -- bitwise identical to solve().
  void solve_into_strided(const double* b, double* x, std::size_t stride,
                          Vector& scratch_b, Vector& scratch_x) const;

  /// det(A), with pivoting sign folded in.
  double determinant() const;

  /// Crude reciprocal-condition estimate: min|U_ii| / max|U_ii|. Good enough
  /// to flag the near-singular variational macromodels the paper discusses.
  double rcond_estimate() const;

 private:
  void factorize();

  Matrix lu_;                     // combined L (unit lower) and U
  std::vector<std::size_t> piv_;  // row permutation
  int pivot_sign_ = 1;
};

/// Convenience: solve A x = b with a one-shot factorization.
Vector solve(Matrix a, const Vector& b);
/// Convenience: full inverse (used only on small reduced-order blocks).
Matrix inverse(const Matrix& a);

}  // namespace lcsf::numeric
