#include "numeric/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace lcsf::numeric {

CholeskyFactorization::CholeskyFactorization(const Matrix& a)
    : l_(a.rows(), a.cols()) {
  if (!a.square()) {
    throw std::invalid_argument("Cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (d <= 0.0) {
      throw std::runtime_error("Cholesky: matrix not positive definite");
    }
    const double ljj = std::sqrt(d);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / ljj;
    }
  }
}

Vector CholeskyFactorization::solve_lower(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("Cholesky: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) s -= l_(i, j) * y[j];
    y[i] = s / l_(i, i);
  }
  return y;
}

Vector CholeskyFactorization::solve_lower_transposed(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("Cholesky: size mismatch");
  Vector y(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= l_(j, ii) * y[j];
    y[ii] = s / l_(ii, ii);
  }
  return y;
}

Vector CholeskyFactorization::solve(const Vector& b) const {
  return solve_lower_transposed(solve_lower(b));
}

Matrix CholeskyFactorization::solve_lower(const Matrix& b) const {
  if (b.rows() != size()) throw std::invalid_argument("Cholesky: size");
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    x.set_col(j, solve_lower(b.col(j)));
  }
  return x;
}

bool is_symmetric(const Matrix& a, double tol) {
  if (!a.square()) return false;
  const double scale = std::max(a.max_abs(), 1e-300);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      if (std::abs(a(i, j) - a(j, i)) > tol * scale) return false;
    }
  }
  return true;
}

}  // namespace lcsf::numeric
