#include "numeric/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace lcsf::numeric {

void SparseMatrix::add(std::size_t i, std::size_t j, double v) {
  if (i >= rows_.size() || j >= rows_.size()) {
    throw std::out_of_range("SparseMatrix::add");
  }
  auto& row = rows_[i];
  auto it = std::lower_bound(
      row.begin(), row.end(), j,
      [](const auto& e, std::size_t col) { return e.first < col; });
  if (it != row.end() && it->first == j) {
    it->second += v;
  } else {
    row.insert(it, {j, v});
  }
}

Vector SparseMatrix::multiply(const Vector& x) const {
  if (x.size() != size()) throw std::invalid_argument("SparseMatrix: size");
  Vector y(size(), 0.0);
  for (std::size_t i = 0; i < size(); ++i) {
    double s = 0.0;
    for (const auto& [j, v] : rows_[i]) s += v * x[j];
    y[i] = s;
  }
  return y;
}

std::size_t SparseMatrix::nonzeros() const {
  std::size_t n = 0;
  for (const auto& r : rows_) n += r.size();
  return n;
}

Matrix SparseMatrix::to_dense() const {
  Matrix d(size(), size());
  for (std::size_t i = 0; i < size(); ++i) {
    for (const auto& [j, v] : rows_[i]) d(i, j) = v;
  }
  return d;
}

SparseLu::SparseLu(const SparseMatrix& a, double pivot_floor) {
  const std::size_t n = a.size();
  lrows_.resize(n);
  urows_.resize(n);
  // Dense scatter workspace reused across rows.
  Vector work(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    // Structural pattern of row i, grown by fill as eliminations proceed.
    std::set<std::size_t> pattern;
    for (const auto& [j, v] : a.row(i)) {
      work[j] = v;
      pattern.insert(j);
    }

    // Eliminate columns k < i in ascending order. Inserting fill columns
    // (> k) during iteration is safe for std::set.
    for (auto it = pattern.begin(); it != pattern.end() && *it < i; ++it) {
      const std::size_t k = *it;
      const auto& urow = urows_[k];
      const double ukk = urow.front().second;  // diagonal stored first
      const double l = work[k] / ukk;
      work[k] = l;
      for (std::size_t e = 1; e < urow.size(); ++e) {
        const auto [j, u] = urow[e];
        if (pattern.insert(j).second) work[j] = 0.0;
        work[j] -= l * u;
      }
    }

    // Harvest L and U parts; reset workspace.
    auto& lrow = lrows_[i];
    auto& urow = urows_[i];
    double diag = 0.0;
    bool have_diag = false;
    for (std::size_t j : pattern) {
      if (j < i) {
        lrow.emplace_back(j, work[j]);
      } else if (j == i) {
        diag = work[j];
        have_diag = true;
      } else {
        urow.emplace_back(j, work[j]);
      }
      work[j] = 0.0;
    }
    if (!have_diag || std::abs(diag) <= pivot_floor) {
      throw std::runtime_error("SparseLu: zero pivot at row " +
                               std::to_string(i));
    }
    urow.insert(urow.begin(), {i, diag});
  }
}

Vector SparseLu::solve(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("SparseLu::solve: size");
  Vector x = b;
  // Forward: L y = b (unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double s = x[i];
    for (const auto& [j, l] : lrows_[i]) s -= l * x[j];
    x[i] = s;
  }
  // Backward: U x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    const auto& urow = urows_[ii];
    for (std::size_t e = 1; e < urow.size(); ++e) {
      s -= urow[e].second * x[urow[e].first];
    }
    x[ii] = s / urow.front().second;
  }
  return x;
}

std::size_t SparseLu::factor_nonzeros() const {
  std::size_t nnz = 0;
  for (const auto& r : lrows_) nnz += r.size();
  for (const auto& r : urows_) nnz += r.size();
  return nnz;
}

}  // namespace lcsf::numeric
