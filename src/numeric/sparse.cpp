#include "numeric/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace lcsf::numeric {

void SparseMatrix::add(std::size_t i, std::size_t j, double v) {
  if (i >= rows_.size() || j >= rows_.size()) {
    throw std::out_of_range("SparseMatrix::add");
  }
  auto& row = rows_[i];
  auto it = std::lower_bound(
      row.begin(), row.end(), j,
      [](const auto& e, std::size_t col) { return e.first < col; });
  if (it != row.end() && it->first == j) {
    it->second += v;
  } else {
    row.insert(it, {j, v});
  }
}

void SparseMatrix::clear() {
  for (auto& r : rows_) r.clear();
}

Vector SparseMatrix::multiply(const Vector& x) const {
  if (x.size() != size()) throw std::invalid_argument("SparseMatrix: size");
  Vector y(size(), 0.0);
  for (std::size_t i = 0; i < size(); ++i) {
    double s = 0.0;
    for (const auto& [j, v] : rows_[i]) s += v * x[j];
    y[i] = s;
  }
  return y;
}

std::size_t SparseMatrix::nonzeros() const {
  std::size_t n = 0;
  for (const auto& r : rows_) n += r.size();
  return n;
}

Matrix SparseMatrix::to_dense() const {
  Matrix d(size(), size());
  for (std::size_t i = 0; i < size(); ++i) {
    for (const auto& [j, v] : rows_[i]) d(i, j) = v;
  }
  return d;
}

SparseLu::SparseLu(const SparseMatrix& a, double pivot_floor) {
  factorize(a, pivot_floor);
}

bool SparseLu::refactor(const SparseMatrix& a, double pivot_floor) {
  if (a.size() == size() && refactor_numeric(a, pivot_floor)) return true;
  factorize(a, pivot_floor);
  return false;
}

void SparseLu::factorize(const SparseMatrix& a, double pivot_floor) {
  const std::size_t n = a.size();
  lrows_.resize(n);
  urows_.resize(n);
  for (auto& r : lrows_) r.clear();
  for (auto& r : urows_) r.clear();
  // Dense scatter workspace reused across rows (and factorizations).
  work_.assign(n, 0.0);
  Vector& work = work_;

  for (std::size_t i = 0; i < n; ++i) {
    // Structural pattern of row i, grown by fill as eliminations proceed.
    std::set<std::size_t> pattern;
    for (const auto& [j, v] : a.row(i)) {
      work[j] = v;
      pattern.insert(j);
    }

    // Eliminate columns k < i in ascending order. Inserting fill columns
    // (> k) during iteration is safe for std::set.
    for (auto it = pattern.begin(); it != pattern.end() && *it < i; ++it) {
      const std::size_t k = *it;
      const auto& urow = urows_[k];
      const double ukk = urow.front().second;  // diagonal stored first
      const double l = work[k] / ukk;
      work[k] = l;
      for (std::size_t e = 1; e < urow.size(); ++e) {
        const auto [j, u] = urow[e];
        if (pattern.insert(j).second) work[j] = 0.0;
        work[j] -= l * u;
      }
    }

    // Harvest L and U parts; reset workspace.
    auto& lrow = lrows_[i];
    auto& urow = urows_[i];
    double diag = 0.0;
    bool have_diag = false;
    for (std::size_t j : pattern) {
      if (j < i) {
        lrow.emplace_back(j, work[j]);
      } else if (j == i) {
        diag = work[j];
        have_diag = true;
      } else {
        urow.emplace_back(j, work[j]);
      }
      work[j] = 0.0;
    }
    if (!have_diag || std::abs(diag) <= pivot_floor) {
      throw std::runtime_error("SparseLu: zero pivot at row " +
                               std::to_string(i));
    }
    urow.insert(urow.begin(), {i, diag});
  }
}

bool SparseLu::refactor_numeric(const SparseMatrix& a, double pivot_floor) {
  // Value-only refactorization over the frozen fill pattern. Mirrors
  // factorize() step for step — ascending elimination order over the same
  // (super)set of columns — so nonzero results are bitwise identical.
  const std::size_t n = size();
  const auto col_less = [](const std::pair<std::size_t, double>& e,
                           std::size_t col) { return e.first < col; };
  for (std::size_t i = 0; i < n; ++i) {
    auto& lrow = lrows_[i];
    auto& urow = urows_[i];
    // Scatter structural values of the new row; every slot not stamped this
    // time keeps the 0.0 the workspace invariant guarantees.
    for (const auto& [j, v] : a.row(i)) {
      if (j == i) {
        work_[j] = v;
        continue;
      }
      auto& prow = j < i ? lrow : urow;
      const auto pbeg = prow.begin() + (j < i ? 0 : 1);  // skip stored diag
      const auto it = std::lower_bound(pbeg, prow.end(), j, col_less);
      if (it == prow.end() || it->first != j) {
        // New structural entry outside the stored pattern: restore the
        // all-zero workspace (zeroing slots never written is harmless) and
        // report a mismatch so refactor() rebuilds fully.
        for (const auto& [jj, vv] : a.row(i)) {
          (void)vv;
          work_[jj] = 0.0;
        }
        return false;
      }
      work_[j] = v;
    }

    // Eliminate columns k < i in ascending order (lrow is sorted). The
    // update targets are the stored urows_[k] columns, which lie inside the
    // stored pattern of row i by construction of the original fill.
    for (const auto& [k, lold] : lrow) {
      (void)lold;
      const auto& urowk = urows_[k];
      const double ukk = urowk.front().second;  // already refactored
      const double l = work_[k] / ukk;
      work_[k] = l;
      for (std::size_t e = 1; e < urowk.size(); ++e) {
        const auto [j, u] = urowk[e];
        work_[j] -= l * u;
      }
    }

    // Harvest in place and restore the all-zero workspace invariant before
    // the pivot check, so a throw leaves the workspace reusable.
    for (auto& e : lrow) {
      e.second = work_[e.first];
      work_[e.first] = 0.0;
    }
    const double diag = work_[i];
    work_[i] = 0.0;
    for (std::size_t e = 1; e < urow.size(); ++e) {
      urow[e].second = work_[urow[e].first];
      work_[urow[e].first] = 0.0;
    }
    if (std::abs(diag) <= pivot_floor) {
      throw std::runtime_error("SparseLu: zero pivot at row " +
                               std::to_string(i));
    }
    urow.front().second = diag;
  }
  return true;
}

Vector SparseLu::solve(const Vector& b) const {
  Vector x;
  solve_into(b, x);
  return x;
}

void SparseLu::solve_into(const Vector& b, Vector& x) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("SparseLu::solve: size");
  x = b;
  // Forward: L y = b (unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double s = x[i];
    for (const auto& [j, l] : lrows_[i]) s -= l * x[j];
    x[i] = s;
  }
  // Backward: U x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    const auto& urow = urows_[ii];
    for (std::size_t e = 1; e < urow.size(); ++e) {
      s -= urow[e].second * x[urow[e].first];
    }
    x[ii] = s / urow.front().second;
  }
}

std::size_t SparseLu::factor_nonzeros() const {
  std::size_t nnz = 0;
  for (const auto& r : lrows_) nnz += r.size();
  for (const auto& r : urows_) nnz += r.size();
  return nnz;
}

}  // namespace lcsf::numeric
