#include "numeric/complex_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/fp_compare.hpp"

namespace lcsf::numeric {

ComplexMatrix::ComplexMatrix(const Matrix& m)
    : rows_(m.rows()), cols_(m.cols()), data_(m.rows() * m.cols()) {
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) (*this)(i, j) = m(i, j);
  }
}

void ComplexMatrix::assign(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, Complex{});
}

ComplexMatrix& ComplexMatrix::operator+=(const ComplexMatrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("ComplexMatrix +=: dimension mismatch");
  }
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
  return *this;
}

ComplexMatrix operator*(const ComplexMatrix& a, const ComplexMatrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("ComplexMatrix *: dimension mismatch");
  }
  ComplexMatrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const Complex aik = a(i, k);
      if (aik == Complex{}) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

CVector ComplexMatrix::operator*(const CVector& x) const {
  if (cols_ != x.size()) {
    throw std::invalid_argument("ComplexMatrix * vector: size mismatch");
  }
  CVector y(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    Complex s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

double ComplexMatrix::max_abs() const {
  double m = 0.0;
  for (const Complex& v : data_) m = std::max(m, std::abs(v));
  return m;
}

ComplexMatrix complex_pencil(const Matrix& g, const Matrix& c, Complex s) {
  if (g.rows() != c.rows() || g.cols() != c.cols()) {
    throw std::invalid_argument("complex_pencil: dimension mismatch");
  }
  ComplexMatrix m(g.rows(), g.cols());
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) {
      m(i, j) = g(i, j) + s * c(i, j);
    }
  }
  return m;
}

ComplexLu::ComplexLu(ComplexMatrix a) : lu_(std::move(a)) { factorize(); }

void ComplexLu::refactor(const ComplexMatrix& a) {
  lu_ = a;  // copy-assign reuses lu_'s heap block when shapes match
  factorize();
}

void ComplexLu::factorize() {
  if (lu_.rows() != lu_.cols()) {
    throw std::invalid_argument("ComplexLu: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  piv_.resize(n);
  for (std::size_t i = 0; i < n; ++i) piv_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    double pmax = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    if (exact_zero(pmax)) throw std::runtime_error("ComplexLu: singular matrix");
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(p, j), lu_(k, j));
      std::swap(piv_[p], piv_[k]);
    }
    const Complex ukk = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const Complex lik = lu_(i, k) / ukk;
      lu_(i, k) = lik;
      if (lik == Complex{}) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= lik * lu_(k, j);
    }
  }
}

CVector ComplexLu::solve(const CVector& b) const {
  CVector x;
  solve_into(b, x);
  return x;
}

void ComplexLu::solve_into(const CVector& b, CVector& x) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("ComplexLu::solve: size");
  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex s = b[piv_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    Complex s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
}

ComplexMatrix ComplexLu::solve(const ComplexMatrix& b) const {
  ComplexMatrix x;
  CVector col_b;
  CVector col_x;
  solve_into(b, x, col_b, col_x);
  return x;
}

void ComplexLu::solve_into(const ComplexMatrix& b, ComplexMatrix& x,
                           CVector& col_b, CVector& col_x) const {
  if (b.rows() != lu_.rows()) {
    throw std::invalid_argument("ComplexLu::solve: dimension mismatch");
  }
  x.assign(b.rows(), b.cols());
  col_b.resize(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col_b[i] = b(i, j);
    solve_into(col_b, col_x);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = col_x[i];
  }
}

}  // namespace lcsf::numeric
