#include "numeric/orthonormal.hpp"

#include <cmath>

#include "numeric/fp_compare.hpp"

namespace lcsf::numeric {

OrthonormalizeResult orthonormalize(const Matrix& a, const Matrix* against,
                                    double tol) {
  const std::size_t n = a.rows();
  OrthonormalizeResult res;
  std::vector<Vector> kept;

  for (std::size_t j = 0; j < a.cols(); ++j) {
    Vector v = a.col(j);
    const double v0 = norm(v);
    if (exact_zero(v0)) {
      ++res.deflated;
      continue;
    }
    // Two MGS passes for numerical orthogonality (Kahan's "twice is
    // enough").
    for (int pass = 0; pass < 2; ++pass) {
      if (against != nullptr) {
        for (std::size_t k = 0; k < against->cols(); ++k) {
          Vector qk = against->col(k);
          axpy(-dot(qk, v), qk, v);
        }
      }
      for (const Vector& qk : kept) {
        axpy(-dot(qk, v), qk, v);
      }
    }
    const double vn = norm(v);
    if (vn <= tol * v0) {
      ++res.deflated;
      continue;
    }
    for (double& x : v) x /= vn;
    kept.push_back(std::move(v));
  }

  res.rank = kept.size();
  res.q = Matrix(n, kept.size());
  for (std::size_t k = 0; k < kept.size(); ++k) res.q.set_col(k, kept[k]);
  return res;
}

double orthogonality_defect(const Matrix& q) {
  const Matrix g = q.transposed() * q;
  double defect = 0.0;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) {
      const double target = (i == j) ? 1.0 : 0.0;
      defect = std::max(defect, std::abs(g(i, j) - target));
    }
  }
  return defect;
}

}  // namespace lcsf::numeric
