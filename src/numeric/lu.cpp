#include "numeric/lu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/fp_compare.hpp"

namespace lcsf::numeric {

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  factorize();
}

void LuFactorization::refactor(const Matrix& a) {
  lu_ = a;  // copy-assign reuses lu_'s heap block when shapes match
  pivot_sign_ = 1;
  factorize();
}

void LuFactorization::factorize() {
  if (!lu_.square()) {
    throw std::invalid_argument("LuFactorization: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  piv_.resize(n);
  for (std::size_t i = 0; i < n; ++i) piv_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    std::size_t p = k;
    double pmax = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    if (exact_zero(pmax)) {
      throw std::runtime_error("LuFactorization: singular matrix");
    }
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(p, j), lu_(k, j));
      std::swap(piv_[p], piv_[k]);
      pivot_sign_ = -pivot_sign_;
    }
    const double ukk = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = lu_(i, k) / ukk;
      lu_(i, k) = lik;
      if (exact_zero(lik)) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu_(i, j) -= lik * lu_(k, j);
      }
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  Vector x;
  solve_into(b, x);
  return x;
}

void LuFactorization::solve_into(const Vector& b, Vector& x) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("LU solve: size mismatch");
  x.resize(n);
  // Apply permutation and forward-substitute L y = P b. Every element of x
  // is written before it is read, so stale workspace contents are harmless.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[piv_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back-substitute U x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
}

void LuFactorization::solve_into_strided(const double* b, double* x,
                                         std::size_t stride,
                                         Vector& scratch_b,
                                         Vector& scratch_x) const {
  const std::size_t n = size();
  scratch_b.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch_b[i] = b[i * stride];
  solve_into(scratch_b, scratch_x);
  for (std::size_t i = 0; i < n; ++i) x[i * stride] = scratch_x[i];
}

Matrix LuFactorization::solve(const Matrix& b) const {
  if (b.rows() != size()) throw std::invalid_argument("LU solve: size");
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    x.set_col(j, solve(b.col(j)));
  }
  return x;
}

void LuFactorization::solve_into(const Matrix& b, Matrix& x, Vector& col_b,
                                 Vector& col_x) const {
  if (b.rows() != size()) throw std::invalid_argument("LU solve: size");
  x.assign(b.rows(), b.cols());
  col_b.resize(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col_b[i] = b(i, j);
    solve_into(col_b, col_x);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = col_x[i];
  }
}

Vector LuFactorization::solve_transposed(const Vector& b) const {
  // A^T = (P^T L U)^T = U^T L^T P. Solve U^T y = b, L^T z = y, x = P^T z.
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("LU solve_T: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(j, i) * y[j];
    y[i] = s / lu_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(j, ii) * y[j];
    y[ii] = s;
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[piv_[i]] = y[i];
  return x;
}

double LuFactorization::determinant() const {
  double d = pivot_sign_;
  for (std::size_t i = 0; i < size(); ++i) d *= lu_(i, i);
  return d;
}

double LuFactorization::rcond_estimate() const {
  double umin = std::abs(lu_(0, 0));
  double umax = umin;
  for (std::size_t i = 1; i < size(); ++i) {
    const double u = std::abs(lu_(i, i));
    umin = std::min(umin, u);
    umax = std::max(umax, u);
  }
  return umax > 0.0 ? umin / umax : 0.0;
}

Vector solve(Matrix a, const Vector& b) {
  return LuFactorization(std::move(a)).solve(b);
}

Matrix inverse(const Matrix& a) {
  LuFactorization lu(a);
  return lu.solve(Matrix::identity(a.rows()));
}

}  // namespace lcsf::numeric
