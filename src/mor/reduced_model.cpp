#include "mor/reduced_model.hpp"

#include <stdexcept>

#include "numeric/lu.hpp"

namespace lcsf::mor {

using numeric::Complex;
using numeric::ComplexLu;
using numeric::ComplexMatrix;
using numeric::LuFactorization;
using numeric::Matrix;

ComplexMatrix ReducedModel::port_impedance(Complex s) const {
  ComplexLu lu(numeric::complex_pencil(g, c, s));
  const ComplexMatrix rhs{b};
  const ComplexMatrix x = lu.solve(rhs);  // (G+sC)^{-1} B
  // Z = B^T X.
  ComplexMatrix z(num_ports, num_ports);
  for (std::size_t i = 0; i < num_ports; ++i) {
    for (std::size_t j = 0; j < num_ports; ++j) {
      Complex sum = 0.0;
      for (std::size_t r = 0; r < b.rows(); ++r) sum += b(r, i) * x(r, j);
      z(i, j) = sum;
    }
  }
  return z;
}

namespace {

Matrix moments_impl(const Matrix& g, const Matrix& c, const Matrix& b,
                    std::size_t num_ports, std::size_t k) {
  LuFactorization lu(g);
  Matrix x = lu.solve(b);  // G^{-1} B
  for (std::size_t i = 0; i < k; ++i) {
    x = lu.solve(c * x);
    x *= -1.0;  // (-G^{-1} C)^i applied
  }
  Matrix z(num_ports, num_ports);
  for (std::size_t i = 0; i < num_ports; ++i) {
    for (std::size_t j = 0; j < num_ports; ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < b.rows(); ++r) sum += b(r, i) * x(r, j);
      z(i, j) = sum;
    }
  }
  return z;
}

Matrix ports_first_b(std::size_t n, std::size_t num_ports) {
  Matrix b(n, num_ports);
  for (std::size_t p = 0; p < num_ports; ++p) b(p, p) = 1.0;
  return b;
}

}  // namespace

Matrix ReducedModel::moment(std::size_t k) const {
  return moments_impl(g, c, b, num_ports, k);
}

ComplexMatrix pencil_port_impedance(const Matrix& g, const Matrix& c,
                                    std::size_t num_ports, Complex s) {
  if (num_ports > g.rows()) {
    throw std::invalid_argument("pencil_port_impedance: too many ports");
  }
  ReducedModel m{g, c, ports_first_b(g.rows(), num_ports), num_ports};
  return m.port_impedance(s);
}

Matrix pencil_moment(const Matrix& g, const Matrix& c, std::size_t num_ports,
                     std::size_t k) {
  return moments_impl(g, c, ports_first_b(g.rows(), num_ports), num_ports, k);
}

}  // namespace lcsf::mor
