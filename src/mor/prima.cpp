#include "mor/prima.hpp"

#include <stdexcept>

#include "numeric/fp_compare.hpp"
#include "numeric/lu.hpp"
#include "numeric/orthonormal.hpp"
#include "obs/span.hpp"

namespace lcsf::mor {

using numeric::Matrix;

namespace {

Matrix port_injection(std::size_t n, std::size_t np) {
  Matrix b(n, np);
  for (std::size_t p = 0; p < np; ++p) b(p, p) = 1.0;
  return b;
}

}  // namespace

PrimaResult prima_reduce(const interconnect::PortedPencil& pencil,
                         const PrimaOptions& opt) {
  obs::ScopedSpan span("mor.prima");
  const std::size_t n = pencil.g.rows();
  const std::size_t np = pencil.num_ports;
  if (np == 0 || np > n) throw std::invalid_argument("prima: bad ports");
  if (opt.block_moments == 0) {
    throw std::invalid_argument("prima: need >= 1 block moment");
  }

  // Factor (G + s0 C) once; each Krylov block is one back-substitution.
  Matrix m = pencil.g;
  if (!numeric::exact_zero(opt.expansion_point)) {
    m += opt.expansion_point * pencil.c;
  }
  numeric::LuFactorization lu(m);

  const Matrix b = port_injection(n, np);
  Matrix basis(n, 0);
  Matrix block = lu.solve(b);  // R = M^{-1} B
  for (std::size_t it = 0; it < opt.block_moments; ++it) {
    auto res = numeric::orthonormalize(block, basis.cols() ? &basis : nullptr);
    if (res.rank == 0) break;  // Krylov space exhausted
    // Append new vectors to the basis.
    Matrix grown(n, basis.cols() + res.rank);
    if (basis.cols() > 0) grown.set_block(0, 0, basis);
    grown.set_block(0, basis.cols(), res.q);
    basis = std::move(grown);
    if (it + 1 < opt.block_moments) {
      block = lu.solve(pencil.c * res.q);
      block *= -1.0;  // A = -(G + s0 C)^{-1} C
    }
  }
  if (basis.cols() == 0) {
    throw std::runtime_error("prima: empty Krylov basis");
  }

  PrimaResult out;
  out.projection = basis;
  out.model = prima_project(pencil, basis);
  return out;
}

ReducedModel prima_project(const interconnect::PortedPencil& pencil,
                           const Matrix& projection) {
  const std::size_t n = pencil.g.rows();
  if (projection.rows() != n) {
    throw std::invalid_argument("prima_project: basis mismatch");
  }
  ReducedModel m;
  m.num_ports = pencil.num_ports;
  m.g = numeric::congruence(projection, pencil.g);
  m.c = numeric::congruence(projection, pencil.c);
  m.g.symmetrize();
  m.c.symmetrize();
  m.b = projection.transposed() *
        port_injection(n, pencil.num_ports);
  return m;
}

}  // namespace lcsf::mor
