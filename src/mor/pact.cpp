#include "mor/pact.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "numeric/cholesky.hpp"
#include "numeric/eigen_sym.hpp"
#include "numeric/lu.hpp"
#include "obs/span.hpp"

namespace lcsf::mor {

using numeric::CholeskyFactorization;
using numeric::Matrix;
using numeric::Vector;

namespace {

struct Partition {
  std::size_t np, ni;
  Matrix gpp, gpi, gii;
  Matrix cpp, cpi, cii;
};

Partition partition(const interconnect::PortedPencil& pencil) {
  const std::size_t n = pencil.g.rows();
  const std::size_t np = pencil.num_ports;
  if (np == 0 || np > n) {
    throw std::invalid_argument("pact: invalid port count");
  }
  const std::size_t ni = n - np;
  Partition p;
  p.np = np;
  p.ni = ni;
  p.gpp = pencil.g.block(0, 0, np, np);
  p.gpi = pencil.g.block(0, np, np, ni);
  p.gii = pencil.g.block(np, np, ni, ni);
  p.cpp = pencil.c.block(0, 0, np, np);
  p.cpi = pencil.c.block(0, np, np, ni);
  p.cii = pencil.c.block(np, np, ni, ni);
  return p;
}

/// Apply the first PACT congruence V = [I 0; X I], X = -Gii^{-1} Gip.
/// Returns A (reduced port conductance) plus the transformed C blocks.
struct FirstCongruence {
  Matrix a;       // Gpp - Gpi Gii^{-1} Gip
  Matrix cpp_t;   // transformed port C block
  Matrix cpi_t;   // transformed port/internal C coupling
  Matrix x;       // Ni x Np
};

FirstCongruence first_congruence(const Partition& p) {
  FirstCongruence f;
  if (p.ni == 0) {
    f.a = p.gpp;
    f.cpp_t = p.cpp;
    f.cpi_t = Matrix(p.np, 0);
    f.x = Matrix(0, p.np);
    return f;
  }
  // X = -Gii^{-1} Gip; Gii SPD for the effective loads we build.
  CholeskyFactorization gii(p.gii);
  const Matrix gip = p.gpi.transposed();
  Matrix x(p.ni, p.np);
  for (std::size_t j = 0; j < p.np; ++j) {
    Vector col = gii.solve(gip.col(j));
    for (double& v : col) v = -v;
    x.set_col(j, col);
  }
  f.x = x;
  f.a = p.gpp + p.gpi * x;
  // C' = V^T C V with V = [I 0; X I]:
  //   C'_pp = Cpp + Cpi X + X^T Cip + X^T Cii X
  //   C'_pi = Cpi + X^T Cii
  const Matrix xt = x.transposed();
  f.cpp_t = p.cpp + p.cpi * x + xt * p.cpi.transposed() + xt * (p.cii * x);
  f.cpp_t.symmetrize();
  f.cpi_t = p.cpi + xt * p.cii;
  return f;
}

ReducedModel assemble(const Matrix& a, const Matrix& cpp_t, const Matrix& r,
                      const Matrix& d, const Matrix& e, std::size_t np) {
  const std::size_t q = d.rows();
  ReducedModel m;
  m.num_ports = np;
  m.g = Matrix(np + q, np + q);
  m.c = Matrix(np + q, np + q);
  m.g.set_block(0, 0, a);
  m.g.set_block(np, np, d);
  m.c.set_block(0, 0, cpp_t);
  m.c.set_block(0, np, r);
  m.c.set_block(np, 0, r.transposed());
  m.c.set_block(np, np, e);
  m.b = Matrix(np + q, np);
  for (std::size_t p = 0; p < np; ++p) m.b(p, p) = 1.0;
  return m;
}

}  // namespace

PactResult pact_reduce(const interconnect::PortedPencil& pencil,
                       const PactOptions& opt) {
  obs::ScopedSpan span("mor.pact");
  const Partition p = partition(pencil);
  const FirstCongruence f = first_congruence(p);
  const std::size_t q = std::min(opt.internal_modes, p.ni);

  if (p.ni == 0 || q == 0) {
    PactResult res;
    res.model = assemble(f.a, f.cpp_t, Matrix(p.np, 0), Matrix(0, 0),
                         Matrix(0, 0), p.np);
    res.basis = PactBasis{Matrix(p.ni, 0), p.np};
    return res;
  }

  // Internal dynamics: Cii u = lambda Gii u; vectors Gii-orthonormal.
  const auto eig = numeric::eigen_symmetric_generalized(p.cii, p.gii);

  // Rank modes. lambda_k is the time constant of internal pole -1/lambda.
  std::vector<std::size_t> order(p.ni);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (opt.selection == PactModeSelection::kSlowestPoles) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a2, std::size_t b2) {
                       return eig.values[a2] > eig.values[b2];
                     });
  } else {
    // Residue weight: |lambda_k| * ||C'_pi u_k||^2.
    Vector weight(p.ni, 0.0);
    for (std::size_t k = 0; k < p.ni; ++k) {
      const Vector ck = f.cpi_t * eig.vectors.col(k);
      weight[k] = std::abs(eig.values[k]) * numeric::dot(ck, ck);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a2, std::size_t b2) {
                       return weight[a2] > weight[b2];
                     });
  }

  Matrix u(p.ni, q);
  Vector lam(q);
  for (std::size_t k = 0; k < q; ++k) {
    u.set_col(k, eig.vectors.col(order[k]));
    lam[k] = eig.values[order[k]];
  }

  // Reduced blocks: D = U^T Gii U = I, E = U^T Cii U = diag(lam),
  // R = C'_pi U.
  const Matrix r = f.cpi_t * u;
  PactResult res;
  res.model = assemble(f.a, f.cpp_t, r, Matrix::identity(q),
                       Matrix::diagonal(lam), p.np);
  res.basis = PactBasis{u, p.np};
  return res;
}

ReducedModel pact_reduce_with_basis(const interconnect::PortedPencil& pencil,
                                    const PactBasis& basis) {
  const Partition p = partition(pencil);
  if (p.np != basis.num_ports || p.ni != basis.u.rows()) {
    throw std::invalid_argument("pact_reduce_with_basis: basis mismatch");
  }
  const FirstCongruence f = first_congruence(p);
  const std::size_t q = basis.u.cols();
  if (q == 0) {
    return assemble(f.a, f.cpp_t, Matrix(p.np, 0), Matrix(0, 0), Matrix(0, 0),
                    p.np);
  }
  // Exact congruence with the frozen internal basis: the internal blocks
  // are no longer exactly I/diagonal for a perturbed pencil, which is fine.
  const Matrix ut = basis.u.transposed();
  const Matrix d = ut * (p.gii * basis.u);
  const Matrix e = ut * (p.cii * basis.u);
  const Matrix r = f.cpi_t * basis.u;
  return assemble(f.a, f.cpp_t, r, d, e, p.np);
}

}  // namespace lcsf::mor
