#include "mor/awe.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/eigen_real.hpp"
#include "numeric/fp_compare.hpp"
#include "numeric/lu.hpp"

namespace lcsf::mor {

using numeric::Complex;
using numeric::ComplexMatrix;
using numeric::Matrix;
using numeric::Vector;

Vector impedance_moments(const interconnect::PortedPencil& pencil,
                         std::size_t port_i, std::size_t port_j,
                         std::size_t count) {
  const std::size_t n = pencil.g.rows();
  if (port_i >= pencil.num_ports || port_j >= pencil.num_ports) {
    throw std::invalid_argument("impedance_moments: bad port");
  }
  numeric::LuFactorization lu(pencil.g);
  Vector ej(n, 0.0);
  ej[port_j] = 1.0;
  Vector x = lu.solve(ej);  // G^{-1} e_j
  Vector m(count);
  for (std::size_t k = 0; k < count; ++k) {
    m[k] = x[port_i];
    if (k + 1 < count) {
      x = lu.solve(pencil.c * x);
      for (double& v : x) v = -v;  // (-G^{-1} C) applied
    }
  }
  return m;
}

PoleResidueModel awe_approximation(const interconnect::PortedPencil& pencil,
                                   std::size_t port_i, std::size_t port_j,
                                   std::size_t q) {
  if (q == 0) throw std::invalid_argument("awe: q must be >= 1");
  Vector m = impedance_moments(pencil, port_i, port_j, 2 * q);

  // Frequency-scale the moments (s' = s / w0) so the Hankel system is
  // workably conditioned -- the standard AWE practice. w0 is the
  // dominant-pole estimate |m0/m1|.
  if (numeric::exact_zero(m[0]) || numeric::exact_zero(m[1])) {
    throw std::runtime_error("awe_approximation: degenerate leading moments");
  }
  const double w0 = std::abs(m[0] / m[1]);
  {
    double scale = 1.0;
    for (std::size_t k = 0; k < m.size(); ++k) {
      m[k] *= scale;
      scale *= w0;
    }
  }

  // Hankel system for the Pade denominator Q(s') = 1 + b1 s' + ... +
  // bq s'^q:
  //   sum_i b_i m_{q+r-i} = -m_{q+r},   r = 0..q-1.
  Matrix h(q, q);
  Vector rhs(q);
  for (std::size_t r = 0; r < q; ++r) {
    for (std::size_t i = 1; i <= q; ++i) {
      h(r, i - 1) = m[q + r - i];
    }
    rhs[r] = -m[q + r];
  }
  Vector b;
  try {
    b = numeric::solve(h, rhs);
  } catch (const std::runtime_error&) {
    throw std::runtime_error(
        "awe_approximation: singular moment (Hankel) system -- the classic "
        "AWE order limit");
  }
  if (numeric::exact_zero(b[q - 1])) {
    throw std::runtime_error("awe_approximation: degenerate denominator");
  }

  // Poles: roots of Q via the companion matrix of the monic polynomial
  //   s^q + (b_{q-1}/b_q) s^{q-1} + ... + (1/b_q).
  Matrix comp(q, q);
  for (std::size_t r = 1; r < q; ++r) comp(r, r - 1) = 1.0;
  for (std::size_t r = 0; r < q; ++r) {
    // Coefficient of s^r in Q/b_q: (r==0 ? 1 : b_r) / b_q.
    const double coef = (r == 0 ? 1.0 : b[r - 1]) / b[q - 1];
    comp(r, q - 1) = -coef;
  }
  // Scaled poles back to real frequency: p = w0 p'.
  auto poles = numeric::eigenvalues_real(comp);
  for (auto& p : poles) p *= w0;

  // Residues from the first q (unscaled) moment relations:
  //   m_l = -sum_k r_k / p_k^{l+1}.
  const Vector m_raw = impedance_moments(pencil, port_i, port_j, q);
  ComplexMatrix vand(q, q);
  numeric::CVector mrhs(q);
  for (std::size_t l = 0; l < q; ++l) {
    for (std::size_t k = 0; k < q; ++k) {
      Complex pk_pow = 1.0;
      for (std::size_t e = 0; e <= l; ++e) pk_pow *= poles[k];
      vand(l, k) = -1.0 / pk_pow;
    }
    mrhs[l] = m_raw[l];
  }
  const numeric::CVector res = numeric::ComplexLu(vand).solve(mrhs);

  Matrix direct(1, 1);
  std::vector<Complex> ps;
  std::vector<ComplexMatrix> rs;
  for (std::size_t k = 0; k < q; ++k) {
    ComplexMatrix r(1, 1);
    r(0, 0) = res[k];
    ps.push_back(poles[k]);
    rs.push_back(std::move(r));
  }
  return PoleResidueModel(1, std::move(direct), std::move(ps),
                          std::move(rs));
}

}  // namespace lcsf::mor
