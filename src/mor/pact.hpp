// PACT: Pole Analysis via Congruence Transformations (Kerns & Yang, TCAD
// 1997) -- the reduction algorithm the paper uses in Example 1 and the one
// whose output has exactly the block structure of paper Eq. (5):
//   Gr = [A 0; 0 D],   Cr = [B R; R^T E].
//
// Steps: (1) a congruence eliminates the port/internal conductance
// coupling, (2) the internal (C_II, G_II) generalized symmetric
// eigenproblem diagonalizes the internal dynamics, (3) the slowest internal
// modes are kept. Both steps are congruences, so the *nominal* reduced
// model of an RC pencil is provably passive -- it is the first-order
// variational expansion (variational.hpp) that loses this property.
#pragma once

#include <cstddef>
#include <optional>

#include "interconnect/coupled_lines.hpp"
#include "mor/reduced_model.hpp"

namespace lcsf::mor {

/// How internal modes are ranked for truncation.
enum class PactModeSelection {
  kSlowestPoles,     ///< largest time constants lambda_k
  kResidueWeighted,  ///< lambda_k scaled by port-coupling strength
};

struct PactOptions {
  std::size_t internal_modes = 4;  ///< q, the reduced internal order
  PactModeSelection selection = PactModeSelection::kSlowestPoles;
};

/// The reusable part of a nominal reduction: the projection that maps the
/// original pencil to the reduced one. Applying it to a *perturbed* pencil
/// gives the pre-characterization samples for the variational library
/// without re-solving (and re-ordering) the eigenproblem.
struct PactBasis {
  numeric::Matrix u;  ///< Ni x q internal eigenbasis kept at nominal
  std::size_t num_ports = 0;
};

struct PactResult {
  ReducedModel model;
  PactBasis basis;
};

/// Reduce a ports-first pencil. Requires the internal conductance block to
/// be SPD (every internal node must have a resistive path to a port or
/// ground) -- true for the effective loads of the framework because driver
/// output conductances are folded in first (Table 1, step 2).
PactResult pact_reduce(const interconnect::PortedPencil& pencil,
                       const PactOptions& opt);

/// Reduce a (perturbed) pencil re-using a nominal basis. The port/internal
/// congruence X(w) = -Gii^{-1} Gip is recomputed exactly for this pencil;
/// only the internal eigenbasis is frozen. The result is still an exact
/// congruence of the given pencil.
ReducedModel pact_reduce_with_basis(const interconnect::PortedPencil& pencil,
                                    const PactBasis& basis);

}  // namespace lcsf::mor
