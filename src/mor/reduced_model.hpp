// Reduced-order macromodel representation shared by PACT and PRIMA.
//
// A reduced model is the pencil (Gr + s Cr) together with the port
// injection matrix Br, so the port impedance is
//   Z(s) = Br^T (Gr + s Cr)^{-1} Br.
// PACT produces the ports-first form of paper Eq. (5)-(7) where
// Br = [I; 0]; PRIMA produces a dense projected Br.
#pragma once

#include <complex>
#include <cstddef>

#include "numeric/complex_matrix.hpp"
#include "numeric/matrix.hpp"

namespace lcsf::mor {

struct ReducedModel {
  numeric::Matrix g;  ///< reduced conductance
  numeric::Matrix c;  ///< reduced capacitance
  numeric::Matrix b;  ///< order x num_ports injection matrix
  std::size_t num_ports = 0;

  std::size_t order() const { return g.rows(); }

  /// Resident heap footprint of the three matrices (cache accounting).
  std::size_t memory_bytes() const {
    return g.memory_bytes() + c.memory_bytes() + b.memory_bytes();
  }

  /// Z(s) over the ports (dense complex solve; fine at reduced sizes).
  numeric::ComplexMatrix port_impedance(numeric::Complex s) const;

  /// k-th port-impedance moment: Z(s) = m0 + m1 s + m2 s^2 + ...
  /// moment(k) = Br^T (-G^{-1} C)^k G^{-1} Br.
  numeric::Matrix moment(std::size_t k) const;
};

/// Port impedance of a full (unreduced) ports-first pencil.
numeric::ComplexMatrix pencil_port_impedance(const numeric::Matrix& g,
                                             const numeric::Matrix& c,
                                             std::size_t num_ports,
                                             numeric::Complex s);

/// Moment of a full ports-first pencil (ports are the first rows).
numeric::Matrix pencil_moment(const numeric::Matrix& g,
                              const numeric::Matrix& c,
                              std::size_t num_ports, std::size_t k);

}  // namespace lcsf::mor
