// PRIMA: Passive Reduced-order Interconnect Macromodeling Algorithm
// (Odabasioglu et al., TCAD 1998). Block Arnoldi Krylov projection with a
// congruence transform; the nominal reduction of an RC pencil is passive
// and moment-matching.
//
// Used alongside PACT as the second projection method named by the paper
// (Sec. 2), and as the reference reduction in tests/ablation benches.
#pragma once

#include <cstddef>

#include "interconnect/coupled_lines.hpp"
#include "mor/reduced_model.hpp"

namespace lcsf::mor {

struct PrimaOptions {
  std::size_t block_moments = 2;  ///< Krylov block iterations (q = Np * this)
  double expansion_point = 0.0;   ///< s0; use > 0 if G alone is singular
};

struct PrimaResult {
  ReducedModel model;
  numeric::Matrix projection;  ///< n x q orthonormal basis X
};

/// Reduce a ports-first pencil with block Arnoldi at s0.
PrimaResult prima_reduce(const interconnect::PortedPencil& pencil,
                         const PrimaOptions& opt);

/// Congruence-project a (perturbed) pencil through a frozen basis X.
ReducedModel prima_project(const interconnect::PortedPencil& pencil,
                           const numeric::Matrix& projection);

}  // namespace lcsf::mor
