#include "mor/variational.hpp"

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

#include "numeric/fp_compare.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace lcsf::mor {

using numeric::Matrix;
using numeric::Vector;

VariationalRom::VariationalRom(ReducedModel nominal,
                               std::vector<ReducedModel> sensitivity)
    : nominal_(std::move(nominal)), sensitivity_(std::move(sensitivity)) {
  for (const ReducedModel& s : sensitivity_) {
    if (s.order() != nominal_.order() ||
        s.num_ports != nominal_.num_ports) {
      throw std::invalid_argument("VariationalRom: inconsistent library");
    }
  }
}

namespace {

bool all_zero(const Vector& w) {
  for (double x : w) {
    if (!numeric::exact_zero(x)) return false;
  }
  return true;
}

}  // namespace

ReducedModel VariationalRom::evaluate(const Vector& w) const {
  if (w.size() != sensitivity_.size()) {
    throw std::invalid_argument("VariationalRom::evaluate: wrong w size");
  }
  obs::add_counter("mor.rom_evaluations");
  // Nominal-sample fast path: no perturbation terms to accumulate.
  if (all_zero(w)) return nominal_;
  ReducedModel m = nominal_;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (numeric::exact_zero(w[i])) continue;
    const ReducedModel& d = sensitivity_[i];
    m.g += w[i] * d.g;
    m.c += w[i] * d.c;
    m.b += w[i] * d.b;
  }
  return m;
}

void VariationalRom::evaluate_into(const Vector& w, ReducedModel& out) const {
  if (w.size() != sensitivity_.size()) {
    throw std::invalid_argument("VariationalRom::evaluate: wrong w size");
  }
  obs::add_counter("mor.rom_evaluations");
  out.num_ports = nominal_.num_ports;
  // Copy-assignment reuses out's heap blocks when shapes already match.
  out.g = nominal_.g;
  out.c = nominal_.c;
  out.b = nominal_.b;
  if (all_zero(w)) return;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (numeric::exact_zero(w[i])) continue;
    const ReducedModel& d = sensitivity_[i];
    out.g.axpy(w[i], d.g);
    out.c.axpy(w[i], d.c);
    out.b.axpy(w[i], d.b);
  }
}

void VariationalRom::evaluate_into_batch(
    const std::vector<const Vector*>& w,
    const std::vector<ReducedModel*>& out) const {
  if (w.size() != out.size()) {
    throw std::invalid_argument(
        "VariationalRom::evaluate_into_batch: lane count mismatch");
  }
  for (const Vector* wb : w) {
    if (wb->size() != sensitivity_.size()) {
      throw std::invalid_argument("VariationalRom::evaluate: wrong w size");
    }
  }
  obs::add_counter("mor.rom_evaluations",
                   static_cast<std::uint64_t>(w.size()));
  for (ReducedModel* m : out) {
    m->num_ports = nominal_.num_ports;
    m->g = nominal_.g;
    m->c = nominal_.c;
    m->b = nominal_.b;
  }
  // Direction-outer: each sensitivity block is streamed through the cache
  // once per batch. Per lane this performs the same ascending-i axpy
  // sequence (with the same exact-zero skips) as evaluate_into.
  const std::size_t ng = nominal_.g.rows() * nominal_.g.cols();
  const std::size_t nc = nominal_.c.rows() * nominal_.c.cols();
  const std::size_t nb = nominal_.b.rows() * nominal_.b.cols();
  for (std::size_t i = 0; i < sensitivity_.size(); ++i) {
    const ReducedModel& d = sensitivity_[i];
    for (std::size_t l = 0; l < w.size(); ++l) {
      const double wi = (*w[l])[i];
      if (numeric::exact_zero(wi)) continue;
      numeric::axpy_batch(wi, d.g.data(), out[l]->g.data(), ng);
      numeric::axpy_batch(wi, d.c.data(), out[l]->c.data(), nc);
      numeric::axpy_batch(wi, d.b.data(), out[l]->b.data(), nb);
    }
  }
}

VariationalRom build_variational_rom(const PencilFamily& family,
                                     std::size_t num_params,
                                     const VariationalOptions& opt) {
  obs::ScopedSpan span("mor.characterize");
  if (opt.fd_step <= 0.0) {
    throw std::invalid_argument("build_variational_rom: fd_step must be > 0");
  }
  const Vector w0(num_params, 0.0);
  const interconnect::PortedPencil p0 = family(w0);

  ReducedModel nominal;
  // Reduction applied to each perturbed pencil sample.
  std::function<ReducedModel(const interconnect::PortedPencil&)> project;

  if (opt.method == ReductionMethod::kPact) {
    PactResult r = pact_reduce(p0, opt.pact);
    nominal = std::move(r.model);
    if (opt.library == LibraryMode::kFullReduction) {
      project = [pact = opt.pact](const interconnect::PortedPencil& p) {
        return pact_reduce(p, pact).model;
      };
    } else {
      project = [basis = std::move(r.basis)](
                    const interconnect::PortedPencil& p) {
        return pact_reduce_with_basis(p, basis);
      };
    }
  } else {
    PrimaResult r = prima_reduce(p0, opt.prima);
    nominal = std::move(r.model);
    if (opt.library == LibraryMode::kFullReduction) {
      project = [prima = opt.prima](const interconnect::PortedPencil& p) {
        return prima_reduce(p, prima).model;
      };
    } else {
      project = [x = std::move(r.projection)](
                    const interconnect::PortedPencil& p) {
        return prima_project(p, x);
      };
    }
  }

  std::vector<ReducedModel> sens;
  sens.reserve(num_params);
  for (std::size_t i = 0; i < num_params; ++i) {
    Vector wp = w0, wm = w0;
    wp[i] = opt.fd_step;
    wm[i] = -opt.fd_step;
    const ReducedModel mp = project(family(wp));
    const ReducedModel mm = project(family(wm));
    ReducedModel d;
    d.num_ports = nominal.num_ports;
    const double inv2h = 1.0 / (2.0 * opt.fd_step);
    d.g = (mp.g - mm.g) * inv2h;
    d.c = (mp.c - mm.c) * inv2h;
    d.b = (mp.b - mm.b) * inv2h;
    sens.push_back(std::move(d));
  }
  return VariationalRom(std::move(nominal), std::move(sens));
}

PencilFamily scalar_family(
    std::function<interconnect::PortedPencil(double)> f) {
  return [f = std::move(f)](const Vector& w) {
    if (w.size() != 1) {
      throw std::invalid_argument("scalar_family: expected 1 parameter");
    }
    return f(w[0]);
  };
}

PencilFamily linear_matrix_family(const PencilFamily& base,
                                  const Vector& anchors) {
  const std::size_t nw = anchors.size();
  auto p0 = std::make_shared<interconnect::PortedPencil>(
      base(Vector(nw, 0.0)));
  auto dg = std::make_shared<std::vector<Matrix>>();
  auto dc = std::make_shared<std::vector<Matrix>>();
  for (std::size_t i = 0; i < nw; ++i) {
    if (numeric::exact_zero(anchors[i])) {
      throw std::invalid_argument("linear_matrix_family: zero anchor");
    }
    Vector w(nw, 0.0);
    w[i] = anchors[i];
    const interconnect::PortedPencil pi = base(w);
    dg->push_back((pi.g - p0->g) * (1.0 / anchors[i]));
    dc->push_back((pi.c - p0->c) * (1.0 / anchors[i]));
  }
  return [p0, dg, dc, nw](const Vector& w) {
    if (w.size() != nw) {
      throw std::invalid_argument("linear_matrix_family: wrong w size");
    }
    // Nominal-sample fast path (pre-characterization evaluates w = 0 often).
    if (all_zero(w)) return *p0;
    interconnect::PortedPencil out = *p0;
    for (std::size_t i = 0; i < nw; ++i) {
      if (numeric::exact_zero(w[i])) continue;
      out.g += w[i] * (*dg)[i];
      out.c += w[i] * (*dc)[i];
    }
    return out;
  };
}

interconnect::PortedPencil with_port_conductance(
    interconnect::PortedPencil pencil, const Vector& gout) {
  if (gout.size() != pencil.num_ports) {
    throw std::invalid_argument("with_port_conductance: size mismatch");
  }
  for (std::size_t k = 0; k < gout.size(); ++k) {
    if (gout[k] < 0.0) {
      throw std::invalid_argument("with_port_conductance: negative G");
    }
    pencil.g(k, k) += gout[k];
  }
  return pencil;
}

}  // namespace lcsf::mor
