// AWE: Asymptotic Waveform Evaluation (Pillage & Rohrer) -- explicit
// moment matching through a Pade approximation.
//
// Included as the historical baseline the projection methods replaced: the
// paper's ref [8] (Anastasakis et al., "On the stability of approximations
// in asymptotic waveform evaluation") documents how Pade-based reductions
// go unstable as the order grows, which is why PACT/PRIMA exist and why
// the paper's pole/residue filter mirrors AWE-era practice. The
// implementation computes impedance moments from the pencil, solves the
// Hankel system for the denominator, and extracts poles from the companion
// matrix.
#pragma once

#include <cstddef>

#include "interconnect/coupled_lines.hpp"
#include "mor/poleres.hpp"

namespace lcsf::mor {

/// q-pole Pade approximation of one port-impedance entry Z_ij(s) of a
/// ports-first pencil. Throws std::runtime_error if the Hankel system is
/// singular (moment degeneracy), which in AWE practice limits usable
/// orders to single digits.
PoleResidueModel awe_approximation(const interconnect::PortedPencil& pencil,
                                   std::size_t port_i, std::size_t port_j,
                                   std::size_t q);

/// The 2q impedance moments m_0..m_{2q-1} of Z_ij (helper, also used by
/// tests).
numeric::Vector impedance_moments(const interconnect::PortedPencil& pencil,
                                  std::size_t port_i, std::size_t port_j,
                                  std::size_t count);

}  // namespace lcsf::mor
