// Pole/residue transformation and the two-step stabilization strategy
// (paper Eq. 13-23).
//
// The reduced pencil is diagonalized through T = -Gr^{-1} Cr = S D S^{-1},
// giving Z_ij(s) = sum_k mu_ik nu_kj / (1 - s d_k): pole p_k = 1/d_k with
// matrix residues. Instability manifests as poles with positive real part;
// the filter drops them and rescales the surviving residues by a common
// per-entry factor beta so the DC (first-moment) behaviour of the original
// model is preserved (Eq. 21-23).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "mor/reduced_model.hpp"
#include "numeric/complex_matrix.hpp"
#include "numeric/eigen_real.hpp"
#include "numeric/lu.hpp"

namespace lcsf::mor {

/// Z(s) = direct + sum_k residues[k] / (s - poles[k]), entrywise over the
/// Np x Np port matrix. Complex poles appear in conjugate pairs with
/// conjugate residues, so time-domain responses are real.
class PoleResidueModel {
 public:
  PoleResidueModel() = default;
  PoleResidueModel(std::size_t num_ports, numeric::Matrix direct,
                   std::vector<numeric::Complex> poles,
                   std::vector<numeric::ComplexMatrix> residues);

  std::size_t num_ports() const { return num_ports_; }
  std::size_t num_poles() const { return poles_.size(); }
  const std::vector<numeric::Complex>& poles() const { return poles_; }
  const numeric::ComplexMatrix& residue(std::size_t k) const {
    return residues_[k];
  }
  const numeric::Matrix& direct() const { return direct_; }

  numeric::Complex eval(std::size_t i, std::size_t j,
                        numeric::Complex s) const;
  /// Full port matrix at s.
  numeric::ComplexMatrix eval(numeric::Complex s) const;

  /// Stability queries (paper: "macromodel instability manifests itself
  /// with positive poles").
  std::size_t count_unstable(double tol = 0.0) const;
  /// Largest positive real part among poles; 0 if stable. Table 3 reports
  /// this value.
  double max_unstable_real() const;

 private:
  std::size_t num_ports_ = 0;
  numeric::Matrix direct_;
  std::vector<numeric::Complex> poles_;
  std::vector<numeric::ComplexMatrix> residues_;
};

/// Reusable scratch for the workspace overload of extract_pole_residue:
/// every intermediate whose shape depends only on the model order and port
/// count, so repeated same-shape extractions allocate nothing but the
/// returned model itself.
struct PoleResidueWorkspace {
  numeric::LuFactorization glu;
  numeric::Matrix t;        // -Gr^{-1} Cr
  numeric::Matrix ginv_b;   // Gr^{-1} Br
  numeric::Vector col_b, col_x;
  numeric::RealEigenScratch eig_scratch;
  numeric::RealEigen eig;
  std::vector<numeric::Complex> vk;
  numeric::ComplexMatrix s_mat;
  numeric::ComplexLu slu;
  numeric::ComplexMatrix ginv_b_c;
  numeric::ComplexMatrix nu;
  numeric::CVector ccol_b, ccol_x;
  numeric::ComplexMatrix mu;
};

/// Diagonalize the reduced model into pole/residue form. Eigenvalues d_k of
/// T with |d_k| below `fast_pole_tol` * max|d| are folded into the direct
/// (constant) term -- they represent poles far beyond the band of interest.
PoleResidueModel extract_pole_residue(const ReducedModel& rom,
                                      double fast_pole_tol = 1e-12);

/// Same transformation with all intermediates drawn from `ws`. Bitwise
/// identical to the plain overload; the hot Monte-Carlo path uses this.
PoleResidueModel extract_pole_residue(const ReducedModel& rom,
                                      PoleResidueWorkspace& ws,
                                      double fast_pole_tol = 1e-12);

struct StabilizationReport {
  std::size_t dropped_poles = 0;
  double max_unstable_real = 0.0;  ///< largest Re(p) among dropped poles
  numeric::Matrix beta;            ///< per-entry DC correction factors
};

/// How the DC behaviour is restored after dropping unstable poles.
enum class StabilizePolicy {
  /// Paper Eq. 22-23: rescale every surviving residue by a common
  /// per-entry factor beta. Exact for far-out unstable poles with small
  /// residues (the common case the paper observed).
  kBetaScaling,
  /// Fold each dropped pole's below-band contribution -r/p into the direct
  /// term. Preserves DC exactly *and* leaves the surviving poles untouched,
  /// which keeps mid-band accuracy when a dropped pole carried significant
  /// weight. (beta is reported as 1.)
  kDirectCompensation,
};

/// The paper's two-step filter: drop right-half-plane poles, then restore
/// the DC (first-moment) behaviour per the chosen policy.
PoleResidueModel stabilize(const PoleResidueModel& model,
                           StabilizationReport* report = nullptr,
                           StabilizePolicy policy =
                               StabilizePolicy::kDirectCompensation);

}  // namespace lcsf::mor
