// Variational reduced-order model library (paper Sec. 2, Eq. 3-11).
//
// The library is pre-characterized from a pencil *family* G(w), C(w): the
// nominal pencil is reduced exactly (PACT or PRIMA), and the sensitivity of
// every reduced matrix to each global parameter w_i is measured by central
// finite differences *through the frozen nominal projection*, the "design
// of experiments" pre-characterization of [1]. Evaluation at a parameter
// sample is then the first-order expansion
//   Mr(w) = Mr0 + sum_i dMr_i w_i                       (paper Eq. 8/11)
// which is cheap but -- as the paper proves -- no longer a congruence
// transformation, so the evaluated model can be non-passive and unstable.
// That defect is what Table 3 measures and what the stability filter
// (poleres.hpp) repairs.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "interconnect/coupled_lines.hpp"
#include "mor/pact.hpp"
#include "mor/prima.hpp"
#include "mor/reduced_model.hpp"

namespace lcsf::mor {

/// A pencil family maps a global-parameter sample w to the ports-first
/// (G(w), C(w)) pencil. Structure (dimension, port order) must not depend
/// on w.
using PencilFamily =
    std::function<interconnect::PortedPencil(const numeric::Vector& w)>;

enum class ReductionMethod { kPact, kPrima };

/// How the pre-characterization samples are reduced.
enum class LibraryMode {
  /// Difference *complete* reductions (eigenbasis / Krylov basis recomputed
  /// at each perturbed sample). This is the paper's variational algebra
  /// (X(w) = X0 + dX1 w1, Eq. 8-11) and reproduces its instability
  /// phenomenon: the eigen-dependent derivative terms are ill-conditioned
  /// for fast/near-degenerate modes, so the evaluated model develops
  /// right-half-plane poles (Table 3).
  kFullReduction,
  /// Freeze the nominal projection and re-project perturbed pencils
  /// through it. Numerically robust (each sample is an exact congruence);
  /// the first-order evaluation can still lose passivity, but much further
  /// from nominal. Used as the ablation baseline.
  kFrozenProjection,
};

struct VariationalOptions {
  ReductionMethod method = ReductionMethod::kPact;
  LibraryMode library = LibraryMode::kFullReduction;
  PactOptions pact;
  PrimaOptions prima;
  double fd_step = 1e-3;  ///< central-difference step per parameter
};

/// The pre-characterized library: nominal model plus per-parameter
/// sensitivities of (Gr, Cr, Br).
class VariationalRom {
 public:
  VariationalRom() = default;
  VariationalRom(ReducedModel nominal, std::vector<ReducedModel> sensitivity);

  std::size_t num_params() const { return sensitivity_.size(); }
  std::size_t num_ports() const { return nominal_.num_ports; }
  std::size_t order() const { return nominal_.order(); }

  const ReducedModel& nominal() const { return nominal_; }
  const ReducedModel& sensitivity(std::size_t i) const {
    return sensitivity_[i];
  }

  /// First-order evaluation at a parameter sample (paper Eq. 11). The
  /// returned model is generally NOT passive; feed it through
  /// extract_pole_residue + stabilize before time-domain use.
  ReducedModel evaluate(const numeric::Vector& w) const;

  /// evaluate() into a caller-owned model, reusing its matrix storage so a
  /// Monte-Carlo worker evaluates thousands of samples with zero heap
  /// traffic. Bitwise identical to evaluate(); an all-zero w short-circuits
  /// to a plain copy of the nominal model.
  void evaluate_into(const numeric::Vector& w, ReducedModel& out) const;

  /// Batched evaluate_into over a block of samples, direction-outer so
  /// each sensitivity matrix is streamed once per block instead of once
  /// per sample. Per lane it performs the same accumulations in the same
  /// order as evaluate_into (including the all-zero and exact-zero skip
  /// paths), so every out[b] is bitwise identical to a scalar call.
  void evaluate_into_batch(const std::vector<const numeric::Vector*>& w,
                           const std::vector<ReducedModel*>& out) const;

  /// Resident heap footprint of the nominal model plus every sensitivity
  /// direction -- the dominant cost of a characterized design, and the
  /// accounting unit of serve::DesignCache's byte budget.
  std::size_t memory_bytes() const {
    std::size_t total = nominal_.memory_bytes();
    for (const ReducedModel& s : sensitivity_) total += s.memory_bytes();
    return total;
  }

 private:
  ReducedModel nominal_;
  std::vector<ReducedModel> sensitivity_;
};

/// Pre-characterize a variational ROM library for a family with
/// `num_params` global parameters (w = 0 is nominal).
VariationalRom build_variational_rom(const PencilFamily& family,
                                     std::size_t num_params,
                                     const VariationalOptions& opt);

/// Adapter: single-parameter family from a scalar function.
PencilFamily scalar_family(
    std::function<interconnect::PortedPencil(double)> f);

/// Materialize the literal variational form of paper Eq. (3)-(4): the
/// returned family evaluates G(w) = G0 + sum_i dGi w_i (same for C) where
/// dGi is the secant between w = 0 and w = anchors[i] * e_i. Use when the
/// raw element values (not the matrix entries) are linear in w, so that the
/// matrix family itself becomes exactly linear, as the paper assumes.
PencilFamily linear_matrix_family(const PencilFamily& base,
                                  const numeric::Vector& anchors);

/// Fold driver output conductances into the port diagonal of a pencil:
/// G_lin = G + G_sc (paper Table 1, step 2). `gout[k]` attaches to port k.
interconnect::PortedPencil with_port_conductance(
    interconnect::PortedPencil pencil, const numeric::Vector& gout);

}  // namespace lcsf::mor
