#include "mor/poleres.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/eigen_real.hpp"
#include "numeric/lu.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace lcsf::mor {

using numeric::Complex;
using numeric::ComplexLu;
using numeric::ComplexMatrix;
using numeric::Matrix;

PoleResidueModel::PoleResidueModel(std::size_t num_ports, Matrix direct,
                                   std::vector<Complex> poles,
                                   std::vector<ComplexMatrix> residues)
    : num_ports_(num_ports),
      direct_(std::move(direct)),
      poles_(std::move(poles)),
      residues_(std::move(residues)) {
  if (poles_.size() != residues_.size()) {
    throw std::invalid_argument("PoleResidueModel: pole/residue mismatch");
  }
  if (direct_.rows() != num_ports_ || direct_.cols() != num_ports_) {
    throw std::invalid_argument("PoleResidueModel: bad direct term");
  }
  for (const auto& r : residues_) {
    if (r.rows() != num_ports_ || r.cols() != num_ports_) {
      throw std::invalid_argument("PoleResidueModel: bad residue shape");
    }
  }
}

Complex PoleResidueModel::eval(std::size_t i, std::size_t j,
                               Complex s) const {
  Complex z = direct_(i, j);
  for (std::size_t k = 0; k < poles_.size(); ++k) {
    z += residues_[k](i, j) / (s - poles_[k]);
  }
  return z;
}

ComplexMatrix PoleResidueModel::eval(Complex s) const {
  ComplexMatrix z(num_ports_, num_ports_);
  for (std::size_t i = 0; i < num_ports_; ++i) {
    for (std::size_t j = 0; j < num_ports_; ++j) z(i, j) = eval(i, j, s);
  }
  return z;
}

std::size_t PoleResidueModel::count_unstable(double tol) const {
  std::size_t n = 0;
  for (const Complex& p : poles_) {
    if (p.real() > tol) ++n;
  }
  return n;
}

double PoleResidueModel::max_unstable_real() const {
  double m = 0.0;
  for (const Complex& p : poles_) m = std::max(m, p.real());
  return m;
}

PoleResidueModel extract_pole_residue(const ReducedModel& rom,
                                      double fast_pole_tol) {
  PoleResidueWorkspace ws;
  return extract_pole_residue(rom, ws, fast_pole_tol);
}

PoleResidueModel extract_pole_residue(const ReducedModel& rom,
                                      PoleResidueWorkspace& ws,
                                      double fast_pole_tol) {
  obs::ScopedSpan span("mor.poleres");
  const std::size_t n = rom.order();
  const std::size_t np = rom.num_ports;
  if (n == 0) throw std::invalid_argument("extract_pole_residue: empty model");

  // T = -Gr^{-1} Cr (paper Eq. 16); Gr^{-1} Br for the nu factors.
  ws.glu.refactor(rom.g);
  ws.glu.solve_into(rom.c, ws.t, ws.col_b, ws.col_x);
  Matrix& t = ws.t;
  t *= -1.0;
  ws.glu.solve_into(rom.b, ws.ginv_b, ws.col_b, ws.col_x);
  const Matrix& ginv_b = ws.ginv_b;

  numeric::eigen_real_into(t, ws.eig_scratch, ws.eig);
  const numeric::RealEigen& eig = ws.eig;

  // Complex eigenvector matrix S, its inverse applied to Gr^{-1} Br, and
  // the port rows of Br^T S.
  ComplexMatrix& s_mat = ws.s_mat;
  s_mat.assign(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    eig.vector_into(k, ws.vk);
    for (std::size_t i = 0; i < n; ++i) s_mat(i, k) = ws.vk[i];
  }
  ws.slu.refactor(s_mat);
  ws.ginv_b_c.assign(n, np);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < np; ++j) ws.ginv_b_c(i, j) = ginv_b(i, j);
  }
  ws.slu.solve_into(ws.ginv_b_c, ws.nu, ws.ccol_b, ws.ccol_x);  // n x np
  const ComplexMatrix& nu = ws.nu;

  // mu = Br^T S (np x n).
  ComplexMatrix& mu = ws.mu;
  mu.assign(np, n);
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      Complex sum = 0.0;
      for (std::size_t r = 0; r < n; ++r) sum += rom.b(r, i) * s_mat(r, k);
      mu(i, k) = sum;
    }
  }

  double dmax = 0.0;
  for (const Complex& d : eig.values) dmax = std::max(dmax, std::abs(d));

  Matrix direct(np, np);
  std::vector<Complex> poles;
  std::vector<ComplexMatrix> residues;
  for (std::size_t k = 0; k < n; ++k) {
    const Complex d = eig.values[k];
    if (std::abs(d) <= fast_pole_tol * dmax) {
      // Infinitely-fast mode: constant contribution mu nu.
      for (std::size_t i = 0; i < np; ++i) {
        for (std::size_t j = 0; j < np; ++j) {
          direct(i, j) += (mu(i, k) * nu(k, j)).real();
        }
      }
      continue;
    }
    // term/(1 - s d) = (-term/d) / (s - 1/d).
    const Complex p = 1.0 / d;
    ComplexMatrix r(np, np);
    for (std::size_t i = 0; i < np; ++i) {
      for (std::size_t j = 0; j < np; ++j) {
        r(i, j) = -mu(i, k) * nu(k, j) / d;
      }
    }
    poles.push_back(p);
    residues.push_back(std::move(r));
  }
  return PoleResidueModel(np, std::move(direct), std::move(poles),
                          std::move(residues));
}

PoleResidueModel stabilize(const PoleResidueModel& model,
                           StabilizationReport* report,
                           StabilizePolicy policy) {
  obs::ScopedSpan span("mor.stabilize");
  const std::size_t np = model.num_ports();

  // DC sums over all vs. stable poles, per port pair (Eq. 23 computes
  // beta from the r_k/p_k sums; contribution of r/(s-p) at s=0 is -r/p).
  ComplexMatrix sum_all(np, np);
  ComplexMatrix sum_stable(np, np);
  std::size_t dropped = 0;
  double max_unstable = 0.0;
  std::vector<std::size_t> keep;
  for (std::size_t k = 0; k < model.num_poles(); ++k) {
    const Complex p = model.poles()[k];
    const bool stable = p.real() <= 0.0;
    for (std::size_t i = 0; i < np; ++i) {
      for (std::size_t j = 0; j < np; ++j) {
        const Complex rp = model.residue(k)(i, j) / p;
        sum_all(i, j) += rp;
        if (stable) sum_stable(i, j) += rp;
      }
    }
    if (stable) {
      keep.push_back(k);
    } else {
      ++dropped;
      max_unstable = std::max(max_unstable, p.real());
    }
  }

  Matrix beta(np, np);
  Matrix direct = model.direct();
  std::uint64_t rescaled_entries = 0;
  if (policy == StabilizePolicy::kBetaScaling) {
    // Per-entry beta (Eq. 23); guard degenerate denominators.
    for (std::size_t i = 0; i < np; ++i) {
      for (std::size_t j = 0; j < np; ++j) {
        const double num = sum_all(i, j).real();
        const double den = sum_stable(i, j).real();
        const bool rescale =
            std::abs(den) > 1e-300 && std::abs(num / den) < 1e6;
        beta(i, j) = rescale ? num / den : 1.0;
        if (rescale) ++rescaled_entries;
      }
    }
  } else {
    // Direct compensation: each dropped pole contributes the constant
    // -r/p for |s| << |p|; keep that part so DC and mid-band survive.
    for (std::size_t i = 0; i < np; ++i) {
      for (std::size_t j = 0; j < np; ++j) {
        beta(i, j) = 1.0;
        direct(i, j) -= (sum_all(i, j) - sum_stable(i, j)).real();
      }
    }
  }

  std::vector<Complex> poles;
  std::vector<ComplexMatrix> residues;
  poles.reserve(keep.size());
  for (std::size_t k : keep) {
    poles.push_back(model.poles()[k]);
    ComplexMatrix r = model.residue(k);
    for (std::size_t i = 0; i < np; ++i) {
      for (std::size_t j = 0; j < np; ++j) r(i, j) *= beta(i, j);
    }
    residues.push_back(std::move(r));
  }

  obs::add_counter("mor.dropped_poles", static_cast<std::uint64_t>(dropped));
  if (dropped > 0) {
    // Only a lossy stabilization is worth reporting: with no unstable
    // poles beta is exactly 1 everywhere and nothing was dropped.
    obs::record_value("mor.max_unstable_real", max_unstable);
    obs::add_counter("mor.beta_rescales", rescaled_entries);
  }
  if (report != nullptr) {
    report->dropped_poles = dropped;
    report->max_unstable_real = max_unstable;
    report->beta = beta;
  }
  return PoleResidueModel(np, std::move(direct), std::move(poles),
                          std::move(residues));
}

}  // namespace lcsf::mor
