#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>

namespace lcsf::runtime {

namespace {

// Set while a thread is executing pool work, so nested parallel_for calls
// degrade to inline execution instead of deadlocking on their own pool.
thread_local bool t_in_pool_task = false;

std::atomic<std::size_t> g_default_threads_override{0};

std::size_t env_threads() {
  const char* env = std::getenv("LCSF_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) return 0;
  return static_cast<std::size_t>(v);
}

}  // namespace

// One parallel_for invocation: a shared cursor the participants claim
// grains from, plus completion accounting and first-exception capture.
// Exactly one of body / lane_body is set.
struct ThreadPool::Batch {
  std::size_t n = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  const std::function<void(std::size_t, std::size_t, std::size_t)>*
      lane_body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  void run_chunks(std::size_t lane) {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t begin = next.fetch_add(grain);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + grain);
      try {
        if (lane_body != nullptr) {
          (*lane_body)(begin, end, lane);
        } else {
          (*body)(begin, end);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  }
};

struct ThreadPool::State {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  Batch* batch = nullptr;          ///< current batch, null when idle
  std::size_t generation = 0;      ///< bumped per batch so workers wake once
  std::size_t active_workers = 0;  ///< workers still inside run_chunks()
  bool stopping = false;
};

ThreadPool::ThreadPool(std::size_t num_threads)
    : state_(std::make_unique<State>()) {
  std::size_t n = num_threads == 0 ? default_threads() : num_threads;
  n = std::max<std::size_t>(1, n);
  workers_.reserve(n - 1);
  for (std::size_t k = 0; k + 1 < n; ++k) {
    // Lane 0 is the calling thread; worker k owns lane k + 1.
    workers_.emplace_back([this, k] { worker_loop(k + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stopping = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop(std::size_t lane) {
  std::size_t seen_generation = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(state_->mu);
      state_->work_cv.wait(lock, [&] {
        return state_->stopping || (state_->batch != nullptr &&
                                    state_->generation != seen_generation);
      });
      if (state_->stopping) return;
      seen_generation = state_->generation;
      batch = state_->batch;
      ++state_->active_workers;
    }
    t_in_pool_task = true;
    batch->run_chunks(lane);
    t_in_pool_task = false;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      --state_->active_workers;
    }
    state_->done_cv.notify_one();
  }
}

void ThreadPool::run_batch(Batch& batch) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->batch = &batch;
    ++state_->generation;
  }
  state_->work_cv.notify_all();

  // The calling thread claims chunks too, as lane 0.
  batch.run_chunks(0);

  {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->done_cv.wait(lock, [&] { return state_->active_workers == 0; });
    state_->batch = nullptr;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_in_pool_task) {
    // Serial path: inline, in index order.
    body(0, n);
    return;
  }
  Batch batch;
  batch.n = n;
  // Several grains per thread so slow samples do not leave threads idle.
  batch.grain = grain != 0 ? grain
                           : std::max<std::size_t>(1, n / (8 * size()));
  batch.body = &body;
  run_batch(batch);
}

void ThreadPool::parallel_for_lanes(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_in_pool_task) {
    body(0, n, 0);
    return;
  }
  Batch batch;
  batch.n = n;
  batch.grain = grain != 0 ? grain
                           : std::max<std::size_t>(1, n / (8 * size()));
  batch.lane_body = &body;
  run_batch(batch);
}

TaskRootScope::TaskRootScope() : saved_(t_in_pool_task) {
  t_in_pool_task = false;
}

TaskRootScope::~TaskRootScope() { t_in_pool_task = saved_; }

std::size_t ThreadPool::default_threads() {
  const std::size_t forced = g_default_threads_override.load();
  if (forced != 0) return forced;
  const std::size_t env = env_threads();
  if (env != 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::set_default_threads(std::size_t n) {
  g_default_threads_override.store(n);
}

void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain) {
  if (n == 0) return;
  const std::size_t resolved =
      threads == 0 ? ThreadPool::default_threads() : threads;
  if (resolved <= 1 || n == 1) {
    body(0, n);
    return;
  }
  ThreadPool pool(std::min(resolved, n));
  pool.parallel_for(n, body, grain);
}

void parallel_for_lanes(
    std::size_t threads, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  const std::size_t resolved =
      threads == 0 ? ThreadPool::default_threads() : threads;
  if (resolved <= 1 || n == 1) {
    body(0, n, 0);
    return;
  }
  ThreadPool pool(std::min(resolved, n));
  pool.parallel_for_lanes(n, body, grain);
}

}  // namespace lcsf::runtime
