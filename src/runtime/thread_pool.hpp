// Shared parallel-execution substrate for the statistical drivers.
//
// The paper's framework makes per-sample evaluation cheap enough that a
// Monte-Carlo run is embarrassingly parallel across samples; this header
// provides the chunked work distribution every driver shares. Determinism
// is the caller's job (see stats/random.hpp: per-sample counter-based
// streams make results independent of the thread count); this layer only
// guarantees that every index in [0, n) is executed exactly once and that
// the first exception thrown by a body is rethrown on the calling thread.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace lcsf::runtime {

/// A persistent pool of worker threads with a dynamically-chunked
/// parallel_for. Work is claimed from a shared atomic cursor in grains, so
/// load imbalance between samples (e.g. SPICE retries on hard samples)
/// does not serialize the run -- the cheap equivalent of work stealing for
/// index ranges.
///
/// Thread-safety: parallel_for may be called from one thread at a time.
/// Calling parallel_for from *inside* a pool task runs the nested loop
/// inline on the calling worker (no deadlock, no oversubscription).
class ThreadPool {
 public:
  /// `num_threads == 0` resolves via default_threads(). A pool of size 1
  /// spawns no workers and runs everything inline.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute work (workers + the calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs body(begin, end) over disjoint chunks covering [0, n).
  /// `grain == 0` picks a chunk size that gives each thread several chunks
  /// for load balancing. The calling thread participates. The first
  /// exception thrown by any chunk is rethrown here after all in-flight
  /// chunks finish; remaining unclaimed chunks are abandoned.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t grain = 0);

  /// parallel_for with a lane index: body(begin, end, lane) where `lane`
  /// identifies the executing thread (caller = 0, worker k = k + 1, so
  /// lane < size()). Within one call a lane is only ever used by one
  /// thread, which lets callers keep per-lane mutable workspaces without
  /// locking. The serial and nested fallback paths run on lane 0.
  void parallel_for_lanes(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
      std::size_t grain = 0);

  /// Thread-count resolution used by every `threads = 0` knob:
  /// set_default_threads() override, else the LCSF_THREADS environment
  /// variable, else std::thread::hardware_concurrency().
  static std::size_t default_threads();
  /// Process-wide override for default_threads(); 0 restores the
  /// environment/hardware resolution. Used by the CLI `--threads` flags.
  static void set_default_threads(std::size_t n);

 private:
  struct Batch;
  void worker_loop(std::size_t lane);
  void run_batch(Batch& batch);

  std::vector<std::thread> workers_;
  // Guarded by mu_ in thread_pool.cpp via an impl block; kept as opaque
  // members to avoid leaking <mutex> into every includer.
  struct State;
  std::unique_ptr<State> state_;
};

/// RAII escape hatch for long-running pool tasks that act as independent
/// execution roots. A body running inside parallel_for normally degrades
/// nested parallel sections to inline execution (the anti-deadlock /
/// anti-oversubscription default). A connection handler of a server,
/// however, occupies its pool lane for the whole session and *wants* the
/// analyses it dispatches to parallelize on their own pools with their
/// own requested thread counts. Constructing a TaskRootScope clears the
/// calling thread's "inside a pool task" flag for the scope's lifetime
/// (restored on destruction), making the scope a fresh nesting root.
/// Determinism is unaffected -- thread counts never change results --
/// and the caller remains responsible for not oversubscribing the host.
class TaskRootScope {
 public:
  TaskRootScope();
  ~TaskRootScope();
  TaskRootScope(const TaskRootScope&) = delete;
  TaskRootScope& operator=(const TaskRootScope&) = delete;

 private:
  bool saved_;
};

/// One-shot convenience: run body over [0, n) on `threads` threads
/// (0 = default_threads(), <= 1 = inline serial). Constructs a transient
/// pool; prefer a long-lived ThreadPool when calling in a loop.
void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 0);

/// One-shot lane-passing variant: lanes are < max(1, resolved threads),
/// with the `threads = 0` resolution of parallel_for. Serial runs use
/// lane 0. Callers sizing per-lane workspaces should use the same
/// resolution (ThreadPool::default_threads() when threads == 0).
void parallel_for_lanes(
    std::size_t threads, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t grain = 0);

}  // namespace lcsf::runtime
