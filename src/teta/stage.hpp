// TETA stage engine: Successive-Chords waveform evaluation of a logic
// stage -- nonlinear driver devices coupled through a (possibly multiport)
// linear load given in stabilized pole/residue form.
//
// The Successive Chords method replaces Newton's per-iteration
// re-linearization with a *fixed* chord conductance per device, chosen once
// before the analysis (Sec. 3.2). Together with the constant per-step load
// impedance from the recursive convolver this makes the stage's linear
// system constant across all timesteps and iterations: one LU
// factorization per transient, with only right-hand-side updates -- the
// source of the framework's speedup and the reason non-passive load models
// cannot destabilize the solver (the chord conductances G_sc are already
// folded into the reduced load, Fig. 1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/source_waveform.hpp"
#include "mor/poleres.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "sim/diagnostics.hpp"
#include "teta/convolution.hpp"

namespace lcsf::teta {

/// Local node kinds within a stage.
enum class StageNodeKind {
  kPort,      ///< connects to a load port (same index as the load model)
  kInternal,  ///< driver-internal node (e.g. the mid node of a NAND stack)
  kInput,     ///< driven by a known input waveform
  kRail,      ///< fixed supply voltage
};

/// A logic stage: transistors plus local linear caps over a small local
/// node space; ports attach to the external load model.
class StageCircuit {
 public:
  /// Port k of the load; call in load-port order.
  std::size_t add_port();
  std::size_t add_internal();
  std::size_t add_input(circuit::SourceWaveform wave);
  std::size_t add_rail(double voltage);

  /// Terminals are local node ids returned by the add_* calls.
  void add_mosfet(circuit::Mosfet m);
  /// Local linear capacitor (device caps are added automatically by
  /// freeze_device_capacitances()).
  void add_capacitor(std::size_t a, std::size_t b, double farads);
  /// Fold the constant device capacitances (cgs/cgd/cdb) into the local
  /// linear caps, mirroring Netlist::freeze_device_capacitances().
  void freeze_device_capacitances();

  std::size_t num_ports() const { return num_ports_; }
  std::size_t num_nodes() const { return kinds_.size(); }
  const std::vector<circuit::Mosfet>& mosfets() const { return mosfets_; }

  /// Chord conductance of one device: the maximum output conductance over
  /// the voltage range [0, vdd], which bounds the device nonlinearity and
  /// guarantees the SC fixed point is contractive.
  static double chord_conductance(const circuit::Mosfet& m, double vdd);

  /// Total chord conductance attached to each port: the G_out of Table 1
  /// step 1, to be folded into the effective load before reduction.
  numeric::Vector port_chord_conductances(double vdd) const;

  // Introspection for the engine.
  StageNodeKind kind(std::size_t n) const { return kinds_[n]; }
  std::size_t kind_index(std::size_t n) const { return kind_index_[n]; }
  double rail_voltage(std::size_t n) const;
  const circuit::SourceWaveform& input_wave(std::size_t n) const;
  const std::vector<circuit::Capacitor>& capacitors() const { return caps_; }

 private:
  std::size_t add_node(StageNodeKind kind, std::size_t kindex);

  std::vector<StageNodeKind> kinds_;
  std::vector<std::size_t> kind_index_;  ///< index within its kind
  std::size_t num_ports_ = 0;
  std::vector<circuit::SourceWaveform> inputs_;
  std::vector<double> rails_;
  std::vector<circuit::Mosfet> mosfets_;
  std::vector<circuit::Capacitor> caps_;  ///< local ids in a/b
  bool frozen_ = false;
};

struct TetaOptions {
  double tstop = 1e-9;
  double dt = 1e-12;
  double vtol = 1e-6;      ///< SC iteration convergence tolerance [V]
  int max_sc_iters = 400;  ///< per timestep
  double vdd = 1.8;        ///< chord selection range
  /// Per-iteration voltage step clamp as a fraction of vdd. Chord
  /// iterations through multi-stage cells (BUF, XOR) can overshoot at high
  /// gain points; damping restores the contraction.
  double damping_frac = 0.25;
  /// Any |v| above this is declared divergence (the chord engine should
  /// never blow up on a *stabilized* load; this catches raw unstable ones
  /// handed in deliberately).
  double vblowup = 1e4;
  /// An unstable pole/residue load is always classified
  /// sim::FailureKind::kUnstableMacromodel (the recursive convolver
  /// cannot integrate right-half-plane poles; stabilize() first). This
  /// flag marks the rejection as an explicit policy choice in the
  /// diagnostics detail. Non-passivity of the *original* circuit is fine
  /// either way -- the chord engine consumes its stabilized ROM.
  bool reject_unstable_load = false;
  /// Whole-transient recovery: on failure, rerun with halved dt and
  /// tightened damping up to `recovery.max_dt_retries` times. The SC
  /// system matrix is constant per transient (one LU), so TETA retries the
  /// run rather than the step (see docs/robustness.md).
  sim::RecoveryOptions recovery;
};

struct TetaResult {
  bool converged = false;
  /// Structured outcome record (kind == kNone on success; retries_used is
  /// filled either way).
  sim::SimDiagnostics diag;
  std::vector<double> time;
  std::vector<numeric::Vector> port_voltages;  ///< per step, size Np
  long total_sc_iterations = 0;

  /// Human-readable failure reason ("converged" when none).
  std::string failure() const { return diag.message(); }

  std::vector<std::pair<double, double>> waveform(std::size_t port) const;
};

/// Reusable per-worker scratch for simulate_stage: every factorization,
/// matrix, vector, and the convolver state whose shape depends only on the
/// stage/load structure. One workspace per Monte-Carlo worker makes the
/// chord/transient loops allocation-free after the first sample. The
/// members are engine internals; treat the struct as opaque storage.
struct TetaWorkspace {
  struct KnownCoupling {
    std::size_t row;
    std::size_t node;
    double g;
  };
  struct CapState {
    int ua, ub;          // unknown indices or -1
    std::size_t na, nb;  // node ids
    double geq;
    double u_prev = 0.0;  // va - vb at committed time
    double i_prev = 0.0;  // companion current at committed time
  };

  RecursiveConvolver conv;
  std::vector<int> node_to_unknown;
  std::vector<double> chords;
  std::vector<KnownCoupling> chord_known;
  std::vector<CapState> caps;
  numeric::Matrix a_dc, a_tr;      // constant SC system matrices
  numeric::Matrix y_h, y_dc;       // load admittance blocks
  numeric::Matrix ident;           // identity scratch for the inversions
  numeric::Matrix dc_base, dc_a;   // DC Newton matrices
  numeric::LuFactorization lu_imp; // impedance inversion scratch
  numeric::LuFactorization lu_dc;  // DC singularity probe
  numeric::LuFactorization lu_tr;  // the one transient factorization
  numeric::LuFactorization lu_newton;  // per-iteration DC Newton factor
  numeric::Vector x, xn, rhs, rhs_const, vnode, hist, yhist, vp, i_load;
  numeric::Vector col_b, col_x;    // column scratch for matrix solves
};

/// Simulate a stage against a stable pole/residue load. The load's chord
/// conductances must already be folded in (construct the effective load
/// with mor::with_port_conductance(pencil, stage.port_chord_conductances())
/// before reduction -- Table 1 step 2).
TetaResult simulate_stage(const StageCircuit& stage,
                          const mor::PoleResidueModel& load,
                          const TetaOptions& opt);

/// Workspace-pooled overload: numerically identical to the plain form but
/// draws all internal state from `ws`, so repeated calls allocate only the
/// result waveforms.
TetaResult simulate_stage(const StageCircuit& stage,
                          const mor::PoleResidueModel& load,
                          const TetaOptions& opt, TetaWorkspace& ws);

/// Fully pooled form: writes into a caller-owned result whose waveform
/// storage (time axis and per-step port vectors) is reused across calls --
/// the last allocation in the Monte-Carlo inner loop. `out` is reset first;
/// on return out.port_voltages.size() == out.time.size(). Bitwise identical
/// to the other overloads.
void simulate_stage(const StageCircuit& stage,
                    const mor::PoleResidueModel& load, const TetaOptions& opt,
                    TetaWorkspace& ws, TetaResult& out);

/// Adaptive piecewise-linear compression of a sampled waveform: keeps the
/// fewest breakpoints such that linear interpolation stays within vtol of
/// every dropped sample (the paper's "fine resolution waveform model ...
/// adaptively selects the breakpoints").
std::vector<std::pair<double, double>> compress_pwl(
    const std::vector<std::pair<double, double>>& samples, double vtol);

}  // namespace lcsf::teta
