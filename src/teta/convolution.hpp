// Recursive convolution of a pole/residue load model under piecewise-linear
// port currents.
//
// With Z(s) = D0 + sum_k Rk / (s - pk), the port voltage response to port
// currents i(t) that are linear inside each timestep satisfies the exact
// update
//   v(t+h) = H(h) i(t+h) + hist(t)
// where H is a constant Np x Np matrix for a fixed step h and hist depends
// only on committed history. This is what lets TETA factor one linear
// system for the whole transient: the load contributes the constant H, the
// chord models contribute constant conductances, and only right-hand sides
// change across timesteps and successive-chord iterations.
#pragma once

#include <complex>
#include <vector>

#include "mor/poleres.hpp"
#include "numeric/matrix.hpp"

namespace lcsf::teta {

class RecursiveConvolver {
 public:
  /// Empty convolver; call reset() before use. Exists so a per-worker
  /// workspace can own the convolver state across samples.
  RecursiveConvolver() = default;

  /// The model must be stable (feed it through mor::stabilize first);
  /// throws sim::SimulationError (kUnstableMacromodel) on
  /// right-half-plane poles, kInvalidInput on dt <= 0.
  RecursiveConvolver(const mor::PoleResidueModel& z, double dt);

  /// Rebuild for a new model/step, reusing all buffers whose shape matches
  /// (pole count may differ per sample; matching entries are reused).
  /// Equivalent to constructing a fresh convolver.
  void reset(const mor::PoleResidueModel& z, double dt);

  std::size_t num_ports() const { return np_; }
  double dt() const { return dt_; }

  /// The constant per-step impedance matrix H(h).
  const numeric::Matrix& step_impedance() const { return h_; }

  /// Z(0), the DC impedance (for operating-point initialization).
  const numeric::Matrix& dc_impedance() const { return zdc_; }

  /// Initialize the history as if current i0 had flowed since t = -inf
  /// (DC steady state).
  void initialize_dc(const numeric::Vector& i0);

  /// History vector for the *next* step, given the committed state and the
  /// current at the start of the step.
  numeric::Vector history() const;
  /// history() into a caller-owned buffer (no allocation once warm).
  void history_into(numeric::Vector& hist) const;

  /// Commit a step: the current moved linearly from its previous committed
  /// value to i_now over dt.
  void advance(const numeric::Vector& i_now);

  // Read-only access to the per-pole recurrence data, used by the batched
  // SoA engine (teta/batch.cpp) to *copy* the exact coefficients and
  // committed state of a scalar-initialized convolver into lane-inner
  // arrays. The batch kernels never recompute these (the coefficient
  // formulas involve complex divisions whose bit pattern must match the
  // scalar path), so batched transients stay bitwise identical.
  std::size_t num_poles() const { return poles_.size(); }
  numeric::Complex decay(std::size_t k) const { return decay_[k]; }
  numeric::Complex ca(std::size_t k) const { return ca_[k]; }
  numeric::Complex cb(std::size_t k) const { return cb_[k]; }
  const numeric::ComplexMatrix& residue(std::size_t k) const {
    return residues_[k];
  }
  const numeric::CVector& state(std::size_t k) const { return state_[k]; }
  /// The committed port current at the current time (i_prev).
  const numeric::Vector& committed_current() const { return i_prev_; }

 private:
  std::size_t np_ = 0;
  double dt_ = 0.0;
  numeric::Matrix h_;    ///< per-step impedance
  numeric::Matrix zdc_;  ///< DC impedance
  numeric::Matrix d0_;   ///< direct term

  // Per-pole data.
  std::vector<numeric::Complex> poles_;
  std::vector<numeric::ComplexMatrix> residues_;
  std::vector<numeric::Complex> decay_;    ///< e^{p h}
  std::vector<numeric::Complex> ca_;       ///< (e^{ph}-1)/p
  std::vector<numeric::Complex> cb_;       ///< (e^{ph}-1-ph)/p^2

  // State: s_kj = int e^{p_k (t - tau)} i_j(tau) dtau, and the committed
  // current at the current time.
  std::vector<numeric::CVector> state_;
  numeric::Vector i_prev_;
};

}  // namespace lcsf::teta
