#include "teta/stage.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/fp_compare.hpp"
#include "numeric/lu.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "teta/convolution.hpp"
#include "teta/stage_detail.hpp"

namespace lcsf::teta {

using circuit::Mosfet;
using numeric::LuFactorization;
using numeric::Matrix;
using numeric::Vector;

std::size_t StageCircuit::add_node(StageNodeKind kind, std::size_t kindex) {
  kinds_.push_back(kind);
  kind_index_.push_back(kindex);
  return kinds_.size() - 1;
}

std::size_t StageCircuit::add_port() {
  return add_node(StageNodeKind::kPort, num_ports_++);
}

std::size_t StageCircuit::add_internal() {
  return add_node(StageNodeKind::kInternal, 0);  // index assigned later
}

std::size_t StageCircuit::add_input(circuit::SourceWaveform wave) {
  inputs_.push_back(std::move(wave));
  return add_node(StageNodeKind::kInput, inputs_.size() - 1);
}

std::size_t StageCircuit::add_rail(double voltage) {
  rails_.push_back(voltage);
  return add_node(StageNodeKind::kRail, rails_.size() - 1);
}

void StageCircuit::add_mosfet(Mosfet m) {
  if (frozen_) {
    throw std::logic_error("StageCircuit: frozen; cannot add devices");
  }
  const auto check = [this](int n) {
    if (n < 0 || static_cast<std::size_t>(n) >= kinds_.size()) {
      throw std::out_of_range("StageCircuit: bad device terminal");
    }
  };
  check(m.drain);
  check(m.gate);
  check(m.source);
  mosfets_.push_back(std::move(m));
}

void StageCircuit::add_capacitor(std::size_t a, std::size_t b,
                                 double farads) {
  if (a >= kinds_.size() || b >= kinds_.size() || a == b) {
    sim::throw_invalid_input("StageCircuit: bad capacitor nodes");
  }
  if (farads < 0.0) {
    sim::throw_invalid_input("StageCircuit: negative capacitance");
  }
  caps_.push_back({static_cast<int>(a), static_cast<int>(b), farads});
}

void StageCircuit::freeze_device_capacitances() {
  if (frozen_) return;
  frozen_ = true;
  for (const Mosfet& m : mosfets_) {
    const auto g = static_cast<std::size_t>(m.gate);
    const auto d = static_cast<std::size_t>(m.drain);
    const auto s = static_cast<std::size_t>(m.source);
    if (g != s) add_capacitor(g, s, m.cgs());
    if (g != d) add_capacitor(g, d, m.cgd());
    // Drain junction cap to the ground rail if one exists; otherwise skip
    // (the load model usually carries the port ground capacitance).
    for (std::size_t n = 0; n < kinds_.size(); ++n) {
      if (kinds_[n] == StageNodeKind::kRail &&
          numeric::exact_zero(rails_[kind_index_[n]])) {
        if (d != n) add_capacitor(d, n, m.cdb());
        break;
      }
    }
  }
}

double StageCircuit::rail_voltage(std::size_t n) const {
  if (kinds_.at(n) != StageNodeKind::kRail) {
    sim::throw_invalid_input("StageCircuit: not a rail node");
  }
  return rails_[kind_index_[n]];
}

const circuit::SourceWaveform& StageCircuit::input_wave(std::size_t n) const {
  if (kinds_.at(n) != StageNodeKind::kInput) {
    sim::throw_invalid_input("StageCircuit: not an input node");
  }
  return inputs_[kind_index_[n]];
}

double StageCircuit::chord_conductance(const Mosfet& m, double vdd) {
  // Maximum output conductance of the level-1 device over the signal range
  // occurs in deep triode at full gate drive: g = beta (Vdd - VT).
  // Deliberately evaluated at *nominal* parameters (delta_l, delta_vt
  // ignored): the paper keeps the chord models constant under parameter
  // fluctuations so the variational load library is characterized once.
  const double beta = m.model.kp * m.w / m.l;
  const double vgst = vdd - m.model.vt0;
  return beta * std::max(vgst, 0.1 * vdd);
}

Vector StageCircuit::port_chord_conductances(double vdd) const {
  Vector g(num_ports_, 0.0);
  for (const Mosfet& m : mosfets_) {
    const double gch = chord_conductance(m, vdd);
    for (int t : {m.drain, m.source}) {
      const auto n = static_cast<std::size_t>(t);
      if (kinds_[n] == StageNodeKind::kPort) {
        g[kind_index_[n]] += gch;
      }
    }
  }
  return g;
}

namespace {

/// Unknown indexing for the SC linear system: ports first (load-port
/// order), then internal nodes. Writes into a reusable map so the hot path
/// allocates nothing; returns the number of unknowns.
std::size_t build_unknown_map(const StageCircuit& s,
                              std::vector<int>& node_to_unknown) {
  node_to_unknown.assign(s.num_nodes(), -1);
  std::size_t next_internal = s.num_ports();
  for (std::size_t n = 0; n < s.num_nodes(); ++n) {
    switch (s.kind(n)) {
      case StageNodeKind::kPort:
        node_to_unknown[n] = static_cast<int>(s.kind_index(n));
        break;
      case StageNodeKind::kInternal:
        node_to_unknown[n] = static_cast<int>(next_internal++);
        break;
      default:
        break;
    }
  }
  return next_internal;
}

}  // namespace

std::vector<std::pair<double, double>> TetaResult::waveform(
    std::size_t port) const {
  std::vector<std::pair<double, double>> w;
  w.reserve(time.size());
  for (std::size_t k = 0; k < time.size(); ++k) {
    w.emplace_back(time[k], port_voltages[k][port]);
  }
  return w;
}

namespace detail {

bool setup_and_dc(const StageCircuit& stage,
                  const mor::PoleResidueModel& load, const TetaOptions& opt,
                  TetaWorkspace& ws, TetaResult& res, StageSetup& setup) {
  res.converged = false;
  res.total_sc_iterations = 0;
  res.diag = sim::SimDiagnostics{};
  res.time.clear();
  const std::size_t n = build_unknown_map(stage, ws.node_to_unknown);
  const std::vector<int>& node_to_unknown = ws.node_to_unknown;
  const std::size_t np = stage.num_ports();

  RecursiveConvolver& conv = ws.conv;
  conv.reset(load, opt.dt);
  const double clamp = opt.damping_frac * opt.vdd;

  // Known node voltages at time t.
  auto known_voltage = [&](std::size_t node, double t) {
    switch (stage.kind(node)) {
      case StageNodeKind::kInput:
        return stage.input_wave(node).value(t);
      case StageNodeKind::kRail:
        return stage.rail_voltage(node);
      default:
        throw std::logic_error("known_voltage: unknown node");
    }
  };

  // ---- Constant system matrices -------------------------------------
  // A_dc: chords + Y_dc (caps open).  A_tr: chords + cap companions + Y_h.
  // Both subtract the port chord diagonal that is already inside the
  // reduced load (it was folded in before reduction, Table 1 step 2).
  const Vector gsc = stage.port_chord_conductances(opt.vdd);

  Matrix& a_dc = ws.a_dc;
  Matrix& a_tr = ws.a_tr;
  a_dc.assign(n, n);
  a_tr.assign(n, n);
  // Contributions of known-node chord couplings: list of (row, node, g).
  std::vector<TetaWorkspace::KnownCoupling>& chord_known = ws.chord_known;
  chord_known.clear();

  std::vector<double>& chords = ws.chords;
  chords.assign(stage.mosfets().size(), 0.0);
  for (std::size_t d = 0; d < stage.mosfets().size(); ++d) {
    const Mosfet& m = stage.mosfets()[d];
    const double g = StageCircuit::chord_conductance(m, opt.vdd);
    chords[d] = g;
    const int ud = node_to_unknown[static_cast<std::size_t>(m.drain)];
    const int us = node_to_unknown[static_cast<std::size_t>(m.source)];
    auto stamp = [&](Matrix& a) {
      if (ud >= 0) a(ud, ud) += g;
      if (us >= 0) a(us, us) += g;
      if (ud >= 0 && us >= 0) {
        a(ud, us) -= g;
        a(us, ud) -= g;
      }
    };
    stamp(a_dc);
    stamp(a_tr);
    if (ud >= 0 && us < 0) {
      chord_known.push_back({static_cast<std::size_t>(ud),
                             static_cast<std::size_t>(m.source), g});
    }
    if (us >= 0 && ud < 0) {
      chord_known.push_back({static_cast<std::size_t>(us),
                             static_cast<std::size_t>(m.drain), g});
    }
  }

  // Load admittance blocks (in-place equivalent of numeric::inverse).
  Matrix& y_h = ws.y_h;
  Matrix& y_dc = ws.y_dc;
  try {
    ws.ident.assign(np, np);
    for (std::size_t i = 0; i < np; ++i) ws.ident(i, i) = 1.0;
    ws.lu_imp.refactor(conv.step_impedance());
    ws.lu_imp.solve_into(ws.ident, y_h, ws.col_b, ws.col_x);
    ws.lu_imp.refactor(conv.dc_impedance());
    ws.lu_imp.solve_into(ws.ident, y_dc, ws.col_b, ws.col_x);
  } catch (const std::runtime_error&) {
    res.diag.kind = sim::FailureKind::kSingularSystem;
    res.diag.detail = "singular load impedance";
    return false;
  }
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t j = 0; j < np; ++j) {
      a_dc(i, j) += y_dc(i, j);
      a_tr(i, j) += y_h(i, j);
    }
    // Chord diagonal already inside the load model.
    a_dc(i, i) -= gsc[i];
    a_tr(i, i) -= gsc[i];
  }

  // Cap companions in the transient matrix.
  const double ceff = 2.0 / opt.dt;
  std::vector<TetaWorkspace::CapState>& caps = ws.caps;
  caps.clear();
  for (const auto& c : stage.capacitors()) {
    TetaWorkspace::CapState cs;
    cs.na = static_cast<std::size_t>(c.a);
    cs.nb = static_cast<std::size_t>(c.b);
    cs.ua = node_to_unknown[cs.na];
    cs.ub = node_to_unknown[cs.nb];
    cs.geq = ceff * c.farads;
    if (cs.ua >= 0) a_tr(cs.ua, cs.ua) += cs.geq;
    if (cs.ub >= 0) a_tr(cs.ub, cs.ub) += cs.geq;
    if (cs.ua >= 0 && cs.ub >= 0) {
      a_tr(cs.ua, cs.ub) -= cs.geq;
      a_tr(cs.ub, cs.ua) -= cs.geq;
    }
    caps.push_back(cs);
  }

  // One factorization for the whole transient -- the linear-centric core.
  // refactor() reuses the pivot/storage from the previous sample instead of
  // reconstructing the factorization objects.
  try {
    ws.lu_dc.refactor(a_dc);
    ws.lu_tr.refactor(a_tr);
  } catch (const std::runtime_error& e) {
    res.diag.kind = sim::FailureKind::kSingularSystem;
    res.diag.detail = std::string("singular SC system: ") + e.what();
    return false;
  }

  // Full node voltages from the unknown vector at time t, written into the
  // reusable ws.vnode buffer.
  auto node_voltages = [&](const Vector& xv, double t) -> const Vector& {
    Vector& v = ws.vnode;
    v.resize(stage.num_nodes());
    for (std::size_t nn = 0; nn < stage.num_nodes(); ++nn) {
      const int u = node_to_unknown[nn];
      v[nn] = (u >= 0) ? xv[static_cast<std::size_t>(u)]
                       : known_voltage(nn, t);
    }
    return v;
  };

  // ---- DC operating point (t = 0) ------------------------------------
  // The one-time DC initialization uses plain Newton: fixed chords stall
  // on pass-transistor nodes whose devices all pinch off (contraction
  // factor -> 1), while Newton converges quadratically. The linear-centric
  // fixed-chord property only matters for the transient loop, where the
  // capacitor companions keep the SC iteration strongly contractive.
  Vector& x = ws.x;
  x.assign(n, 0.0);
  {
    Matrix& base = ws.dc_base;
    base.assign(n, n);
    for (std::size_t i = 0; i < np; ++i) {
      for (std::size_t j = 0; j < np; ++j) base(i, j) = y_dc(i, j);
      base(i, i) -= gsc[i];
    }
    constexpr double kGminDc = 1e-9;  // floats pinch-off-isolated nodes
    for (std::size_t i = 0; i < n; ++i) base(i, i) += kGminDc;

    bool ok = false;
    for (int it = 0; it < opt.max_sc_iters; ++it) {
      Matrix& a = ws.dc_a;
      a = base;
      Vector& rhs = ws.rhs;
      rhs.assign(n, 0.0);
      const Vector& vnode = node_voltages(x, 0.0);
      for (const Mosfet& m : stage.mosfets()) {
        const double vg = vnode[static_cast<std::size_t>(m.gate)];
        const double vd = vnode[static_cast<std::size_t>(m.drain)];
        const double vs = vnode[static_cast<std::size_t>(m.source)];
        const auto op = circuit::mosfet_eval(m, vg, vd, vs);
        const double ieq = op.ids - op.gm * (vg - vs) - op.gds * (vd - vs);
        const int rd = node_to_unknown[static_cast<std::size_t>(m.drain)];
        const int rs =
            node_to_unknown[static_cast<std::size_t>(m.source)];
        const struct {
          int node;
          double coeff;
        } cols[3] = {{m.gate, op.gm},
                     {m.drain, op.gds},
                     {m.source, -(op.gm + op.gds)}};
        for (int sign : {+1, -1}) {
          const int row = (sign > 0) ? rd : rs;
          if (row < 0) continue;
          const auto r = static_cast<std::size_t>(row);
          for (const auto& cc : cols) {
            const int col =
                node_to_unknown[static_cast<std::size_t>(cc.node)];
            const double val = sign * cc.coeff;
            if (numeric::exact_zero(val)) continue;
            if (col >= 0) {
              a(r, static_cast<std::size_t>(col)) += val;
            } else {
              rhs[r] -= val *
                        vnode[static_cast<std::size_t>(cc.node)];
            }
          }
          rhs[r] -= sign * ieq;
        }
      }
      // The chord iteration at paper speed: refactor the fixed-shape Newton
      // matrix in place instead of constructing a factorization per pass.
      ws.lu_newton.refactor(a);
      Vector& xn = ws.xn;
      ws.lu_newton.solve_into(rhs, xn);
      double dmax = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double d = xn[i] - x[i];
        dmax = std::max(dmax, std::abs(d));
        x[i] += std::clamp(d, -clamp, clamp);
      }
      ++res.total_sc_iterations;
      if (dmax < opt.vtol) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      res.diag.kind = sim::FailureKind::kDcFailure;
      res.diag.detail = "Newton failed at DC";
      res.diag.iterations = res.total_sc_iterations;
      return false;
    }
  }

  // Initialize convolver history with the DC load current.
  {
    Vector& vp = ws.vp;
    vp.resize(np);
    for (std::size_t p = 0; p < np; ++p) vp[p] = x[p];
    numeric::mul_into(y_dc, vp, ws.i_load);
    conv.initialize_dc(ws.i_load);
  }
  // Initialize cap states.
  {
    const Vector& vn = node_voltages(x, 0.0);
    for (auto& cs : caps) {
      cs.u_prev = vn[cs.na] - vn[cs.nb];
      cs.i_prev = 0.0;
    }
  }

  setup.n = n;
  return true;
}

}  // namespace detail

namespace {

/// One full transient attempt at a fixed dt/damping; simulate_stage() owns
/// the retry policy around it. All shape-invariant state lives in `ws`, and
/// `res` keeps its waveform storage between calls, so back-to-back runs are
/// fully allocation-free. `res.port_voltages` may exceed `res.time` on
/// return (pooled capacity); the public wrapper truncates it.
void simulate_stage_once(const StageCircuit& stage,
                         const mor::PoleResidueModel& load,
                         const TetaOptions& opt, TetaWorkspace& ws,
                         TetaResult& res) {
  detail::StageSetup setup;
  if (!detail::setup_and_dc(stage, load, opt, ws, res, setup)) return;

  const std::size_t n = setup.n;
  const std::size_t np = stage.num_ports();
  const double clamp = opt.damping_frac * opt.vdd;
  const std::vector<int>& node_to_unknown = ws.node_to_unknown;
  RecursiveConvolver& conv = ws.conv;
  const LuFactorization& lu_tr = ws.lu_tr;
  const Matrix& y_h = ws.y_h;
  const std::vector<TetaWorkspace::KnownCoupling>& chord_known =
      ws.chord_known;
  std::vector<TetaWorkspace::CapState>& caps = ws.caps;
  const std::vector<double>& chords = ws.chords;
  Vector& x = ws.x;

  // Known node voltages at time t.
  auto known_voltage = [&](std::size_t node, double t) {
    switch (stage.kind(node)) {
      case StageNodeKind::kInput:
        return stage.input_wave(node).value(t);
      case StageNodeKind::kRail:
        return stage.rail_voltage(node);
      default:
        throw std::logic_error("known_voltage: unknown node");
    }
  };
  // Full node voltages from the unknown vector at time t, written into the
  // reusable ws.vnode buffer.
  auto node_voltages = [&](const Vector& xv, double t) -> const Vector& {
    Vector& v = ws.vnode;
    v.resize(stage.num_nodes());
    for (std::size_t nn = 0; nn < stage.num_nodes(); ++nn) {
      const int u = node_to_unknown[nn];
      v[nn] = (u >= 0) ? xv[static_cast<std::size_t>(u)]
                       : known_voltage(nn, t);
    }
    return v;
  };
  // Device Norton currents at iterate v: j = ids(v) - G_ch (vd - vs);
  // accumulate -j into rhs rows (current leaving drain is +ids).
  auto add_device_norton = [&](const Vector& vnode, Vector& rhs) {
    for (std::size_t d = 0; d < stage.mosfets().size(); ++d) {
      const Mosfet& m = stage.mosfets()[d];
      const double vg = vnode[static_cast<std::size_t>(m.gate)];
      const double vd = vnode[static_cast<std::size_t>(m.drain)];
      const double vs = vnode[static_cast<std::size_t>(m.source)];
      const double ids = circuit::mosfet_eval(m, vg, vd, vs).ids;
      const double j = ids - chords[d] * (vd - vs);
      const int ud = node_to_unknown[static_cast<std::size_t>(m.drain)];
      const int us = node_to_unknown[static_cast<std::size_t>(m.source)];
      if (ud >= 0) rhs[static_cast<std::size_t>(ud)] -= j;
      if (us >= 0) rhs[static_cast<std::size_t>(us)] += j;
    }
  };

  const auto nsteps =
      static_cast<std::size_t>(std::ceil(opt.tstop / opt.dt - 1e-9));
  res.time.reserve(nsteps + 1);
  res.port_voltages.reserve(nsteps + 1);
  auto store = [&](double t) {
    const std::size_t k = res.time.size();
    res.time.push_back(t);
    if (k == res.port_voltages.size()) res.port_voltages.emplace_back(np);
    Vector& vp = res.port_voltages[k];
    vp.resize(np);
    for (std::size_t p = 0; p < np; ++p) vp[p] = x[p];
  };
  store(0.0);

  // ---- Transient loop -------------------------------------------------
  for (std::size_t step = 1; step <= nsteps; ++step) {
    const double t = static_cast<double>(step) * opt.dt;

    Vector& rhs_const = ws.rhs_const;
    rhs_const.assign(n, 0.0);
    for (const auto& kc : chord_known) {
      rhs_const[kc.row] += kc.g * known_voltage(kc.node, t);
    }
    for (const auto& cs : caps) {
      // Row a: +i = geq(va - vb) - (geq u_prev + i_prev); the -geq vb term
      // moves to the RHS with a + sign when b is a known node (and
      // symmetrically for row b).
      const double h = cs.geq * cs.u_prev + cs.i_prev;
      const double ka =
          cs.ua < 0 ? cs.geq * known_voltage(cs.na, t) : 0.0;
      const double kb =
          cs.ub < 0 ? cs.geq * known_voltage(cs.nb, t) : 0.0;
      if (cs.ua >= 0) rhs_const[cs.ua] += h + kb;
      if (cs.ub >= 0) rhs_const[cs.ub] += -h + ka;
    }
    conv.history_into(ws.hist);
    numeric::mul_into(y_h, ws.hist, ws.yhist);
    const Vector& yhist = ws.yhist;
    for (std::size_t p = 0; p < np; ++p) rhs_const[p] += yhist[p];

    bool ok = false;
    for (int it = 0; it < opt.max_sc_iters; ++it) {
      Vector& rhs = ws.rhs;
      rhs = rhs_const;
      add_device_norton(node_voltages(x, t), rhs);
      Vector& xn = ws.xn;
      lu_tr.solve_into(rhs, xn);
      double dmax = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double d = xn[i] - x[i];
        dmax = std::max(dmax, std::abs(d));
        x[i] += std::clamp(d, -clamp, clamp);
      }
      ++res.total_sc_iterations;
      if (dmax < opt.vtol) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      res.diag.kind = sim::FailureKind::kNewtonNonConvergence;
      res.diag.failure_time = t;
      res.diag.detail =
          "SC iteration limit " + std::to_string(opt.max_sc_iters) + " hit";
      res.diag.iterations = res.total_sc_iterations;
      res.diag.max_abs_v = numeric::max_abs(x);
      return;
    }
    if (const double mv = numeric::max_abs(x); mv > opt.vblowup) {
      res.diag.kind = sim::FailureKind::kBlowUp;
      res.diag.failure_time = t;
      res.diag.detail = "port/internal voltage blew up (unstable load?)";
      res.diag.iterations = res.total_sc_iterations;
      res.diag.max_abs_v = mv;
      return;
    }

    // Commit: load current and cap states.
    {
      Vector& vp = ws.vp;
      vp.resize(np);
      for (std::size_t p = 0; p < np; ++p) vp[p] = x[p];
      numeric::mul_into(y_h, vp, ws.i_load);
      for (std::size_t p = 0; p < np; ++p) ws.i_load[p] -= yhist[p];
      conv.advance(ws.i_load);
    }
    const Vector& vn = node_voltages(x, t);
    for (auto& cs : caps) {
      const double u_new = vn[cs.na] - vn[cs.nb];
      const double i_new = cs.geq * (u_new - cs.u_prev) - cs.i_prev;
      cs.u_prev = u_new;
      cs.i_prev = i_new;
    }
    store(t);
  }

  res.converged = true;
  res.diag.iterations = res.total_sc_iterations;
}

}  // namespace

TetaResult simulate_stage(const StageCircuit& stage,
                          const mor::PoleResidueModel& load,
                          const TetaOptions& opt) {
  TetaWorkspace ws;
  return simulate_stage(stage, load, opt, ws);
}

TetaResult simulate_stage(const StageCircuit& stage,
                          const mor::PoleResidueModel& load,
                          const TetaOptions& opt, TetaWorkspace& ws) {
  TetaResult res;
  simulate_stage(stage, load, opt, ws, res);
  return res;
}

void simulate_stage(const StageCircuit& stage,
                    const mor::PoleResidueModel& load, const TetaOptions& opt,
                    TetaWorkspace& ws, TetaResult& out) {
  obs::ScopedSpan span("teta.stage");
  obs::add_counter("teta.transients");
  if (load.num_ports() != stage.num_ports()) {
    sim::throw_invalid_input("simulate_stage: port count mismatch");
  }
  // An unstable pole/residue load can never be convolved (the recursive
  // convolver requires stabilize() first), so classify it up front
  // instead of leaking the convolver's exception. The
  // reject_unstable_load flag only makes the rejection an explicit policy
  // choice in the diagnostics.
  if (load.count_unstable() > 0) {
    out.converged = false;
    out.total_sc_iterations = 0;
    out.time.clear();
    out.port_voltages.clear();
    out.diag = sim::SimDiagnostics{};
    out.diag.kind = sim::FailureKind::kUnstableMacromodel;
    out.diag.detail = std::to_string(load.count_unstable()) +
                      " right-half-plane pole(s), max Re = " +
                      std::to_string(load.max_unstable_real()) +
                      (opt.reject_unstable_load ? " (rejected by policy)"
                                                : "; stabilize() the load");
    obs::add_counter("teta.failed_transients");
    return;
  }

  // The SC system matrix is constant across the whole transient (one LU
  // per run), so recovery reruns the transient at halved dt / tightened
  // damping instead of retrying a single step.
  TetaOptions attempt = opt;
  long iterations = 0;
  for (int retry = 0;; ++retry) {
    simulate_stage_once(stage, load, attempt, ws, out);
    iterations += out.total_sc_iterations;
    out.total_sc_iterations = iterations;
    out.diag.iterations = iterations;
    out.diag.retries_used = retry;
    if (out.converged || retry >= opt.recovery.max_dt_retries ||
        out.diag.kind == sim::FailureKind::kSingularSystem) {
      obs::add_counter("teta.chord_iterations",
                       static_cast<std::uint64_t>(iterations));
      obs::add_counter("teta.dt_halvings", static_cast<std::uint64_t>(retry));
      if (out.converged) {
        if (retry > 0) obs::add_counter("teta.recovered_transients");
      } else {
        obs::add_counter("teta.failed_transients");
      }
      // Drop pooled per-step vectors beyond this run's step count so the
      // public time/port_voltages invariant holds.
      out.port_voltages.resize(out.time.size());
      return;
    }
    attempt.dt *= 0.5;
    attempt.damping_frac *= opt.recovery.damping_factor;
  }
}

std::vector<std::pair<double, double>> compress_pwl(
    const std::vector<std::pair<double, double>>& samples, double vtol) {
  if (samples.size() <= 2) return samples;
  std::vector<std::pair<double, double>> out;
  out.push_back(samples.front());
  std::size_t anchor = 0;
  for (std::size_t k = 2; k < samples.size(); ++k) {
    // Check all samples strictly between anchor and k against the chord.
    const auto [t0, v0] = samples[anchor];
    const auto [t1, v1] = samples[k];
    bool within = true;
    for (std::size_t m = anchor + 1; m < k && within; ++m) {
      const auto [tm, vm] = samples[m];
      const double frac = (tm - t0) / (t1 - t0);
      const double lin = v0 + frac * (v1 - v0);
      within = std::abs(lin - vm) <= vtol;
    }
    if (!within) {
      anchor = k - 1;
      out.push_back(samples[anchor]);
    }
  }
  out.push_back(samples.back());
  return out;
}

}  // namespace lcsf::teta
