// Internal seam between the scalar TETA engine (stage.cpp) and the batched
// SoA engine (batch.cpp).
//
// One transient attempt splits into two phases:
//   1. setup + DC: build the unknown map, stamp the constant SC system,
//      factorize it, find the DC operating point with damped Newton, and
//      initialize the convolver history and capacitor states;
//   2. the timestep loop.
// Phase 1 is identical per sample whether samples run scalar or batched,
// so the batch engine calls this shared implementation per lane and only
// the timestep loop is re-expressed in lane-inner SoA form. Sharing the
// code (rather than duplicating it) is what keeps the batched path
// bitwise identical to the scalar one by construction.
//
// This header is engine-internal: only stage.cpp and batch.cpp include it.
#pragma once

#include <cstddef>

#include "teta/stage.hpp"

namespace lcsf::teta::detail {

/// Scalars produced by the setup phase that the timestep loop needs.
struct StageSetup {
  std::size_t n = 0;  ///< number of SC unknowns (ports + internals)
};

/// Setup + DC phase of one transient attempt (see file comment). Resets
/// `res`, fills `ws` (unknown map, chords, chord_known, caps, factored
/// lu_tr, y_h/y_dc, DC solution in ws.x, initialized convolver) and
/// `setup`. Returns false with res.diag classified when the attempt
/// cannot proceed (singular system, DC Newton failure).
bool setup_and_dc(const StageCircuit& stage,
                  const mor::PoleResidueModel& load, const TetaOptions& opt,
                  TetaWorkspace& ws, TetaResult& res, StageSetup& setup);

}  // namespace lcsf::teta::detail
