#include "teta/convolution.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/diagnostics.hpp"

namespace lcsf::teta {

using numeric::Complex;
using numeric::CVector;
using numeric::Matrix;
using numeric::Vector;

RecursiveConvolver::RecursiveConvolver(const mor::PoleResidueModel& z,
                                       double dt) {
  reset(z, dt);
}

void RecursiveConvolver::reset(const mor::PoleResidueModel& z, double dt) {
  if (dt <= 0.0) sim::throw_invalid_input("RecursiveConvolver: dt <= 0");
  if (z.count_unstable() > 0) {
    throw sim::SimulationError(
        sim::FailureKind::kUnstableMacromodel,
        "RecursiveConvolver: model has unstable poles; stabilize() first");
  }
  np_ = z.num_ports();
  dt_ = dt;
  d0_ = z.direct();
  poles_ = z.poles();
  residues_.resize(z.num_poles());
  for (std::size_t k = 0; k < z.num_poles(); ++k) {
    residues_[k] = z.residue(k);
  }

  decay_.resize(poles_.size());
  ca_.resize(poles_.size());
  cb_.resize(poles_.size());
  for (std::size_t k = 0; k < poles_.size(); ++k) {
    const Complex p = poles_[k];
    const Complex e = std::exp(p * dt);
    decay_[k] = e;
    // Exact integrals for a linear current segment i(u) = a + b u:
    //   state += a (e^{ph}-1)/p + b (e^{ph}-1-ph)/p^2.
    ca_[k] = (e - 1.0) / p;
    cb_[k] = (e - 1.0 - p * dt) / (p * p);
  }

  // H = D0 + sum_k Re(Rk cb_k) / h: the i(t+h) coefficient of the update.
  h_ = d0_;
  zdc_ = d0_;
  for (std::size_t k = 0; k < poles_.size(); ++k) {
    for (std::size_t i = 0; i < np_; ++i) {
      for (std::size_t j = 0; j < np_; ++j) {
        h_(i, j) += (residues_[k](i, j) * cb_[k]).real() / dt_;
        zdc_(i, j) += (residues_[k](i, j) / (-poles_[k])).real();
      }
    }
  }

  // Reuse the per-pole state rows that already exist (pole counts vary a
  // little across samples; matching rows keep their heap blocks).
  state_.resize(poles_.size());
  for (CVector& row : state_) row.assign(np_, Complex{0.0, 0.0});
  i_prev_.assign(np_, 0.0);
}

void RecursiveConvolver::initialize_dc(const Vector& i0) {
  if (i0.size() != np_) {
    sim::throw_invalid_input("initialize_dc: size mismatch");
  }
  // Steady current since -inf: s_kj = -i_j / p_k, so that
  // v = D0 i + sum Re(Rk s_k) = Z(0) i.
  for (std::size_t k = 0; k < poles_.size(); ++k) {
    for (std::size_t j = 0; j < np_; ++j) {
      state_[k][j] = -i0[j] / poles_[k];
    }
  }
  i_prev_ = i0;
}

Vector RecursiveConvolver::history() const {
  Vector hist;
  history_into(hist);
  return hist;
}

void RecursiveConvolver::history_into(Vector& hist) const {
  // v(t+h) = H i(t+h) + hist with
  //   hist_i = sum_k Re[ Rk ( e^{ph} s_k + (ca - cb/h) i_prev ) ]_i.
  hist.assign(np_, 0.0);
  for (std::size_t k = 0; k < poles_.size(); ++k) {
    const Complex w = ca_[k] - cb_[k] / dt_;
    for (std::size_t i = 0; i < np_; ++i) {
      Complex acc{0.0, 0.0};
      for (std::size_t j = 0; j < np_; ++j) {
        acc += residues_[k](i, j) *
               (decay_[k] * state_[k][j] + w * i_prev_[j]);
      }
      hist[i] += acc.real();
    }
  }
}

void RecursiveConvolver::advance(const Vector& i_now) {
  if (i_now.size() != np_) {
    sim::throw_invalid_input("advance: size mismatch");
  }
  for (std::size_t k = 0; k < poles_.size(); ++k) {
    for (std::size_t j = 0; j < np_; ++j) {
      const double a = i_prev_[j];
      const double b = (i_now[j] - i_prev_[j]) / dt_;
      state_[k][j] = decay_[k] * state_[k][j] + ca_[k] * a + cb_[k] * b;
    }
  }
  i_prev_ = i_now;
}

}  // namespace lcsf::teta
