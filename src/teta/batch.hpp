// Lockstep SoA execution of a block of TETA transients.
//
// A Monte-Carlo batch runs K samples of the *same stage topology* whose
// device parameters differ. Setup + DC reuse the scalar engine per lane
// (teta/stage_detail.hpp); the timestep loop then runs all lanes in
// lockstep with every per-step kernel (recursive-convolution history,
// state advance, RHS assembly, capacitor companions) expressed over
// lane-inner structure-of-arrays buffers, so the compiler vectorizes
// across samples (numeric/simd.hpp).
//
// Contract: results are bitwise identical to running teta::simulate_stage
// on each lane separately. This holds because
//   * setup/DC *is* the scalar code (shared, not duplicated);
//   * the per-step kernels perform the same double operations in the same
//     order per lane -- complex arithmetic is expanded to the
//     (ac - bd, ad + bc) component form, which is GCC's fast path for
//     finite operands (the only case a converging transient produces);
//   * coefficients involving complex divisions are copied bit-for-bit
//     from the scalar-initialized convolver, never recomputed;
//   * any lane that cannot stay in lockstep (shape mismatch, setup or
//     convergence failure, blow-up) is rerun from scratch under the
//     scalar engine, whose first attempt repeats the failed lockstep
//     attempt bitwise and then continues with the usual retry ladder.
#pragma once

#include <cstddef>
#include <vector>

#include "mor/poleres.hpp"
#include "numeric/matrix.hpp"
#include "teta/stage.hpp"

namespace lcsf::teta {

/// One sample of a lockstep block: caller-owned circuit, load, scratch and
/// result. Stages may differ in device parameters but must share topology
/// (node kinds, device terminals, capacitor endpoints, pole count) to run
/// in lockstep; lanes that do not are transparently run scalar.
struct BatchLane {
  const StageCircuit* stage = nullptr;
  const mor::PoleResidueModel* load = nullptr;
  TetaWorkspace* ws = nullptr;
  TetaResult* out = nullptr;
};

/// Reusable SoA scratch for simulate_stage_batch; all buffers are
/// lane-inner (index [... * B + b] for live-lane slot b) and sized on
/// entry, so back-to-back batches allocate nothing once warm. Engine
/// internals; treat as opaque storage.
struct BatchTetaWorkspace {
  // Unknowns / RHS / per-step vectors, [i * B + b].
  std::vector<double> x, xn, rhs, rhs_const, vknown, hist, yhist, vp, il;
  std::vector<double> acc;  // history accumulator, [b]
  // Recursive-convolution coefficients, [k * B + b].
  std::vector<double> d_re, d_im, ca_re, ca_im, cb_re, cb_im, w_re, w_im;
  std::vector<double> r_re, r_im;    // residues, [((k*np + i)*np + j)*B + b]
  std::vector<double> st_re, st_im;  // conv state, [(k*np + j)*B + b]
  std::vector<double> ip;            // committed port current, [j * B + b]
  std::vector<double> ck_g;          // known-chord conductance, [c * B + b]
  std::vector<double> cap_geq, cap_u, cap_i;  // cap companions, [c * B + b]
  std::vector<const numeric::Matrix*> y_h;    // per live slot
  std::vector<std::size_t> known_nodes;       // nodes with known voltage
  std::vector<std::size_t> live;              // lane index per SoA slot
  std::vector<unsigned char> alive, sc_done;  // per live slot
  std::vector<unsigned char> rerun;           // per lane
};

/// Simulate every lane, in lockstep where possible (see file comment for
/// the bitwise contract). Each lane's `out` carries the same result,
/// diagnostics and iteration counts as a scalar simulate_stage call;
/// invalid inputs (port-count mismatch) throw exactly as the scalar
/// engine does.
void simulate_stage_batch(const std::vector<BatchLane>& lanes,
                          const TetaOptions& opt, BatchTetaWorkspace& bws);

}  // namespace lcsf::teta
