#include "teta/batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "circuit/mosfet.hpp"
#include "numeric/simd.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "teta/convolution.hpp"
#include "teta/stage_detail.hpp"

namespace lcsf::teta {

using circuit::Mosfet;
using numeric::Matrix;
using numeric::Vector;

namespace {

/// Lanes run in lockstep only when every per-step loop has identical trip
/// counts and index maps: same node kinds (hence the same unknown map),
/// same device terminals, same capacitor endpoints, same pole count.
/// Parameter *values* (chords, caps, residues) are free to differ.
bool same_shape(const StageCircuit& a, const StageCircuit& b,
                const mor::PoleResidueModel& la,
                const mor::PoleResidueModel& lb) {
  if (a.num_nodes() != b.num_nodes() || a.num_ports() != b.num_ports() ||
      la.num_poles() != lb.num_poles()) {
    return false;
  }
  for (std::size_t n = 0; n < a.num_nodes(); ++n) {
    if (a.kind(n) != b.kind(n) || a.kind_index(n) != b.kind_index(n)) {
      return false;
    }
  }
  if (a.mosfets().size() != b.mosfets().size()) return false;
  for (std::size_t d = 0; d < a.mosfets().size(); ++d) {
    const Mosfet& ma = a.mosfets()[d];
    const Mosfet& mb = b.mosfets()[d];
    if (ma.drain != mb.drain || ma.gate != mb.gate ||
        ma.source != mb.source) {
      return false;
    }
  }
  if (a.capacitors().size() != b.capacitors().size()) return false;
  for (std::size_t c = 0; c < a.capacitors().size(); ++c) {
    if (a.capacitors()[c].a != b.capacitors()[c].a ||
        a.capacitors()[c].b != b.capacitors()[c].b) {
      return false;
    }
  }
  return true;
}

}  // namespace

void simulate_stage_batch(const std::vector<BatchLane>& lanes,
                          const TetaOptions& opt, BatchTetaWorkspace& bws) {
  const std::size_t nl = lanes.size();
  if (nl == 0) return;
  if (nl == 1) {
    simulate_stage(*lanes[0].stage, *lanes[0].load, opt, *lanes[0].ws,
                   *lanes[0].out);
    return;
  }
  obs::ScopedSpan span("teta.stage_batch");

  // ---- Preflight -----------------------------------------------------
  // Lanes the lockstep block cannot carry go straight to the scalar
  // engine so their diagnostics, counters and exceptions match it
  // exactly: invalid/unstable inputs now, shape mismatches at the end.
  bws.rerun.assign(nl, 0);
  bws.live.clear();
  std::size_t ref = nl;  // first lockstep-eligible lane
  for (std::size_t l = 0; l < nl; ++l) {
    const BatchLane& ln = lanes[l];
    if (ln.load->num_ports() != ln.stage->num_ports() ||
        ln.load->count_unstable() > 0) {
      simulate_stage(*ln.stage, *ln.load, opt, *ln.ws, *ln.out);
      continue;
    }
    if (ref == nl) {
      ref = l;
    } else if (!same_shape(*lanes[ref].stage, *ln.stage, *lanes[ref].load,
                           *ln.load)) {
      bws.rerun[l] = 1;
      continue;
    }
    // Shared scalar setup + DC. A lane that fails here would fail the
    // scalar engine's first attempt identically; hand it the whole run
    // (setup_and_dc resets the result, so nothing leaks).
    detail::StageSetup setup;
    if (detail::setup_and_dc(*ln.stage, *ln.load, opt, *ln.ws, *ln.out,
                             setup)) {
      bws.live.push_back(l);
    } else {
      bws.rerun[l] = 1;
    }
  }

  const std::size_t B = bws.live.size();
  if (B > 0) {
    const StageCircuit& rstage = *lanes[bws.live[0]].stage;
    const TetaWorkspace& rws = *lanes[bws.live[0]].ws;
    const std::vector<int>& node_to_unknown = rws.node_to_unknown;
    const std::size_t n = rws.x.size();
    const std::size_t np = rstage.num_ports();
    const std::size_t nn = rstage.num_nodes();
    const std::size_t nk = rws.conv.num_poles();
    const std::size_t nck = rws.chord_known.size();
    const std::size_t ncp = rws.caps.size();
    const double dt = opt.dt;
    const double clamp = opt.damping_frac * opt.vdd;

    // ---- Pack: AoS lane state -> lane-inner SoA ----------------------
    bws.x.resize(n * B);
    bws.xn.resize(n * B);
    bws.rhs.resize(n * B);
    bws.rhs_const.resize(n * B);
    bws.vknown.assign(nn * B, 0.0);
    bws.hist.resize(np * B);
    bws.yhist.resize(np * B);
    bws.vp.resize(np * B);
    bws.il.resize(np * B);
    bws.acc.resize(B);
    bws.d_re.resize(nk * B);
    bws.d_im.resize(nk * B);
    bws.ca_re.resize(nk * B);
    bws.ca_im.resize(nk * B);
    bws.cb_re.resize(nk * B);
    bws.cb_im.resize(nk * B);
    bws.w_re.resize(nk * B);
    bws.w_im.resize(nk * B);
    bws.r_re.resize(nk * np * np * B);
    bws.r_im.resize(nk * np * np * B);
    bws.st_re.resize(nk * np * B);
    bws.st_im.resize(nk * np * B);
    bws.ip.resize(np * B);
    bws.ck_g.resize(nck * B);
    bws.cap_geq.resize(ncp * B);
    bws.cap_u.resize(ncp * B);
    bws.cap_i.resize(ncp * B);
    bws.y_h.resize(B);
    bws.alive.assign(B, 1);
    bws.sc_done.resize(B);
    bws.known_nodes.clear();
    for (std::size_t node = 0; node < nn; ++node) {
      if (node_to_unknown[node] < 0) bws.known_nodes.push_back(node);
    }

    for (std::size_t b = 0; b < B; ++b) {
      const TetaWorkspace& w = *lanes[bws.live[b]].ws;
      for (std::size_t i = 0; i < n; ++i) bws.x[i * B + b] = w.x[i];
      // Coefficients are *copied* from the scalar-initialized convolver;
      // recomputing them here would redo complex divisions whose bit
      // patterns must match the scalar path.
      for (std::size_t k = 0; k < nk; ++k) {
        const numeric::Complex dk = w.conv.decay(k);
        const numeric::Complex cak = w.conv.ca(k);
        const numeric::Complex cbk = w.conv.cb(k);
        bws.d_re[k * B + b] = dk.real();
        bws.d_im[k * B + b] = dk.imag();
        bws.ca_re[k * B + b] = cak.real();
        bws.ca_im[k * B + b] = cak.imag();
        bws.cb_re[k * B + b] = cbk.real();
        bws.cb_im[k * B + b] = cbk.imag();
        // w = ca - cb/dt, hoisted out of history_into: componentwise
        // operations on constants, so per-transient equals per-step.
        bws.w_re[k * B + b] = cak.real() - cbk.real() / dt;
        bws.w_im[k * B + b] = cak.imag() - cbk.imag() / dt;
        const numeric::ComplexMatrix& rk = w.conv.residue(k);
        for (std::size_t i = 0; i < np; ++i) {
          for (std::size_t j = 0; j < np; ++j) {
            const numeric::Complex rij = rk(i, j);
            bws.r_re[((k * np + i) * np + j) * B + b] = rij.real();
            bws.r_im[((k * np + i) * np + j) * B + b] = rij.imag();
          }
        }
        const numeric::CVector& st = w.conv.state(k);
        for (std::size_t j = 0; j < np; ++j) {
          bws.st_re[(k * np + j) * B + b] = st[j].real();
          bws.st_im[(k * np + j) * B + b] = st[j].imag();
        }
      }
      for (std::size_t j = 0; j < np; ++j) {
        bws.ip[j * B + b] = w.conv.committed_current()[j];
      }
      for (std::size_t c = 0; c < nck; ++c) {
        bws.ck_g[c * B + b] = w.chord_known[c].g;
      }
      for (std::size_t c = 0; c < ncp; ++c) {
        bws.cap_geq[c * B + b] = w.caps[c].geq;
        bws.cap_u[c * B + b] = w.caps[c].u_prev;
        bws.cap_i[c * B + b] = w.caps[c].i_prev;
      }
      bws.y_h[b] = &w.y_h;
    }

    const auto nsteps =
        static_cast<std::size_t>(std::ceil(opt.tstop / opt.dt - 1e-9));
    auto store_lane = [&](std::size_t b, double t) {
      TetaResult& res = *lanes[bws.live[b]].out;
      const std::size_t k = res.time.size();
      res.time.push_back(t);
      if (k == res.port_voltages.size()) res.port_voltages.emplace_back(np);
      Vector& pv = res.port_voltages[k];
      pv.resize(np);
      for (std::size_t p = 0; p < np; ++p) pv[p] = bws.x[p * B + b];
    };
    for (std::size_t b = 0; b < B; ++b) {
      TetaResult& res = *lanes[bws.live[b]].out;
      res.time.reserve(nsteps + 1);
      res.port_voltages.reserve(nsteps + 1);
      store_lane(b, 0.0);
    }

    // ---- Lockstep transient loop -------------------------------------
    // Dead lanes (rerouted to the scalar engine) simply stop being read:
    // the SoA kernels keep streaming over their slots, which is harmless
    // and keeps every inner loop mask-free.
    for (std::size_t step = 1; step <= nsteps; ++step) {
      const double t = static_cast<double>(step) * dt;
      bool any = false;
      for (std::size_t b = 0; b < B; ++b) any = any || bws.alive[b] != 0;
      if (!any) break;

      // Known node voltages once per lane per step. The scalar path
      // evaluates these lazily (several times per step); they are pure in
      // t, so caching changes evaluation count, not values.
      for (std::size_t b = 0; b < B; ++b) {
        if (!bws.alive[b]) continue;
        const StageCircuit& stg = *lanes[bws.live[b]].stage;
        for (const std::size_t node : bws.known_nodes) {
          bws.vknown[node * B + b] =
              stg.kind(node) == StageNodeKind::kInput
                  ? stg.input_wave(node).value(t)
                  : stg.rail_voltage(node);
        }
      }

      // Constant part of the RHS: known-chord couplings, cap companions.
      std::fill(bws.rhs_const.begin(), bws.rhs_const.end(), 0.0);
      for (std::size_t c = 0; c < nck; ++c) {
        double* rc = &bws.rhs_const[rws.chord_known[c].row * B];
        const double* g = &bws.ck_g[c * B];
        const double* kv = &bws.vknown[rws.chord_known[c].node * B];
        LCSF_SIMD_LOOP
        for (std::size_t b = 0; b < B; ++b) rc[b] += g[b] * kv[b];
      }
      for (std::size_t c = 0; c < ncp; ++c) {
        const TetaWorkspace::CapState& cm = rws.caps[c];
        const double* geq = &bws.cap_geq[c * B];
        const double* cu = &bws.cap_u[c * B];
        const double* ci = &bws.cap_i[c * B];
        const double* kva =
            cm.ua < 0 ? &bws.vknown[cm.na * B] : nullptr;
        const double* kvb =
            cm.ub < 0 ? &bws.vknown[cm.nb * B] : nullptr;
        double* ra =
            cm.ua >= 0
                ? &bws.rhs_const[static_cast<std::size_t>(cm.ua) * B]
                : nullptr;
        double* rb =
            cm.ub >= 0
                ? &bws.rhs_const[static_cast<std::size_t>(cm.ub) * B]
                : nullptr;
        for (std::size_t b = 0; b < B; ++b) {
          const double h = geq[b] * cu[b] + ci[b];
          const double ka = kva ? geq[b] * kva[b] : 0.0;
          const double kb = kvb ? geq[b] * kvb[b] : 0.0;
          if (ra) ra[b] += h + kb;
          if (rb) rb[b] += -h + ka;
        }
      }

      // Recursive-convolution history, lane-inner. Complex products are
      // expanded to (ac - bd, ad + bc): GCC's finite-operand fast path,
      // so each lane's arithmetic matches the scalar history_into()
      // bit-for-bit (same j-ascending accumulation order).
      for (std::size_t i = 0; i < np; ++i) {
        double* hi = &bws.hist[i * B];
        for (std::size_t b = 0; b < B; ++b) hi[b] = 0.0;
      }
      for (std::size_t k = 0; k < nk; ++k) {
        const double* dre = &bws.d_re[k * B];
        const double* dim = &bws.d_im[k * B];
        const double* wre = &bws.w_re[k * B];
        const double* wim = &bws.w_im[k * B];
        for (std::size_t i = 0; i < np; ++i) {
          double* acc = bws.acc.data();
          for (std::size_t b = 0; b < B; ++b) acc[b] = 0.0;
          for (std::size_t j = 0; j < np; ++j) {
            const double* rre = &bws.r_re[((k * np + i) * np + j) * B];
            const double* rim = &bws.r_im[((k * np + i) * np + j) * B];
            const double* sre = &bws.st_re[(k * np + j) * B];
            const double* sim_ = &bws.st_im[(k * np + j) * B];
            const double* ipj = &bws.ip[j * B];
            LCSF_SIMD_LOOP
            for (std::size_t b = 0; b < B; ++b) {
              const double mre = dre[b] * sre[b] - dim[b] * sim_[b];
              const double mim = dre[b] * sim_[b] + dim[b] * sre[b];
              const double ure = mre + wre[b] * ipj[b];
              const double uim = mim + wim[b] * ipj[b];
              acc[b] += rre[b] * ure - rim[b] * uim;
            }
          }
          double* hi = &bws.hist[i * B];
          LCSF_SIMD_LOOP
          for (std::size_t b = 0; b < B; ++b) hi[b] += acc[b];
        }
      }
      numeric::mul_into_batch(bws.y_h.data(), np, np, bws.hist.data(),
                              bws.yhist.data(), B);
      for (std::size_t p = 0; p < np; ++p) {
        double* rc = &bws.rhs_const[p * B];
        const double* yh = &bws.yhist[p * B];
        LCSF_SIMD_LOOP
        for (std::size_t b = 0; b < B; ++b) rc[b] += yh[b];
      }

      // Successive-chords iteration, per lane (device evaluation and the
      // triangular solves are inherently per-sample); each lane iterates
      // exactly as the scalar engine would and drops out when converged.
      for (std::size_t b = 0; b < B; ++b) bws.sc_done[b] = !bws.alive[b];
      for (int it = 0; it < opt.max_sc_iters; ++it) {
        bool pending = false;
        for (std::size_t b = 0; b < B; ++b) {
          pending = pending || bws.sc_done[b] == 0;
        }
        if (!pending) break;
        for (std::size_t b = 0; b < B; ++b) {
          if (bws.sc_done[b]) continue;
          const BatchLane& ln = lanes[bws.live[b]];
          const StageCircuit& stg = *ln.stage;
          TetaWorkspace& w = *ln.ws;
          for (std::size_t i = 0; i < n; ++i) {
            bws.rhs[i * B + b] = bws.rhs_const[i * B + b];
          }
          Vector& vn = w.vnode;
          vn.resize(nn);
          for (std::size_t node = 0; node < nn; ++node) {
            const int u = node_to_unknown[node];
            vn[node] = u >= 0 ? bws.x[static_cast<std::size_t>(u) * B + b]
                              : bws.vknown[node * B + b];
          }
          for (std::size_t d = 0; d < stg.mosfets().size(); ++d) {
            const Mosfet& m = stg.mosfets()[d];
            const double vg = vn[static_cast<std::size_t>(m.gate)];
            const double vd = vn[static_cast<std::size_t>(m.drain)];
            const double vs = vn[static_cast<std::size_t>(m.source)];
            const double ids = circuit::mosfet_eval(m, vg, vd, vs).ids;
            const double j = ids - w.chords[d] * (vd - vs);
            const int ud = node_to_unknown[static_cast<std::size_t>(m.drain)];
            const int us =
                node_to_unknown[static_cast<std::size_t>(m.source)];
            if (ud >= 0) bws.rhs[static_cast<std::size_t>(ud) * B + b] -= j;
            if (us >= 0) bws.rhs[static_cast<std::size_t>(us) * B + b] += j;
          }
          w.lu_tr.solve_into_strided(&bws.rhs[b], &bws.xn[b], B, w.rhs,
                                     w.xn);
          double dmax = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            const double d = bws.xn[i * B + b] - bws.x[i * B + b];
            dmax = std::max(dmax, std::abs(d));
            bws.x[i * B + b] += std::clamp(d, -clamp, clamp);
          }
          ++ln.out->total_sc_iterations;
          if (dmax < opt.vtol) bws.sc_done[b] = 1;
        }
      }
      for (std::size_t b = 0; b < B; ++b) {
        if (!bws.alive[b]) continue;
        if (!bws.sc_done[b]) {  // SC limit hit: scalar retry ladder
          bws.alive[b] = 0;
          bws.rerun[bws.live[b]] = 1;
          continue;
        }
        double mv = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          mv = std::max(mv, std::abs(bws.x[i * B + b]));
        }
        if (mv > opt.vblowup) {
          bws.alive[b] = 0;
          bws.rerun[bws.live[b]] = 1;
        }
      }

      // Commit: load current, convolver state, cap states.
      for (std::size_t p = 0; p < np; ++p) {
        double* vpp = &bws.vp[p * B];
        const double* xp = &bws.x[p * B];
        LCSF_SIMD_LOOP
        for (std::size_t b = 0; b < B; ++b) vpp[b] = xp[b];
      }
      numeric::mul_into_batch(bws.y_h.data(), np, np, bws.vp.data(),
                              bws.il.data(), B);
      for (std::size_t p = 0; p < np; ++p) {
        double* ilp = &bws.il[p * B];
        const double* yh = &bws.yhist[p * B];
        LCSF_SIMD_LOOP
        for (std::size_t b = 0; b < B; ++b) ilp[b] -= yh[b];
      }
      // advance(): state = (decay*state + ca*a) + cb*b_, matching the
      // scalar association and componentwise complex*double products.
      for (std::size_t k = 0; k < nk; ++k) {
        const double* dre = &bws.d_re[k * B];
        const double* dim = &bws.d_im[k * B];
        const double* care = &bws.ca_re[k * B];
        const double* caim = &bws.ca_im[k * B];
        const double* cbre = &bws.cb_re[k * B];
        const double* cbim = &bws.cb_im[k * B];
        for (std::size_t j = 0; j < np; ++j) {
          double* sre = &bws.st_re[(k * np + j) * B];
          double* sim_ = &bws.st_im[(k * np + j) * B];
          const double* ipj = &bws.ip[j * B];
          const double* ilj = &bws.il[j * B];
          LCSF_SIMD_LOOP
          for (std::size_t b = 0; b < B; ++b) {
            const double a = ipj[b];
            const double b_ = (ilj[b] - a) / dt;
            const double mre = dre[b] * sre[b] - dim[b] * sim_[b];
            const double mim = dre[b] * sim_[b] + dim[b] * sre[b];
            sre[b] = (mre + care[b] * a) + cbre[b] * b_;
            sim_[b] = (mim + caim[b] * a) + cbim[b] * b_;
          }
        }
      }
      for (std::size_t j = 0; j < np; ++j) {
        double* ipj = &bws.ip[j * B];
        const double* ilj = &bws.il[j * B];
        LCSF_SIMD_LOOP
        for (std::size_t b = 0; b < B; ++b) ipj[b] = ilj[b];
      }
      for (std::size_t c = 0; c < ncp; ++c) {
        const TetaWorkspace::CapState& cm = rws.caps[c];
        const double* va =
            cm.ua >= 0 ? &bws.x[static_cast<std::size_t>(cm.ua) * B]
                       : &bws.vknown[cm.na * B];
        const double* vb =
            cm.ub >= 0 ? &bws.x[static_cast<std::size_t>(cm.ub) * B]
                       : &bws.vknown[cm.nb * B];
        const double* geq = &bws.cap_geq[c * B];
        double* cu = &bws.cap_u[c * B];
        double* ci = &bws.cap_i[c * B];
        LCSF_SIMD_LOOP
        for (std::size_t b = 0; b < B; ++b) {
          const double u_new = va[b] - vb[b];
          const double i_new = geq[b] * (u_new - cu[b]) - ci[b];
          cu[b] = u_new;
          ci[b] = i_new;
        }
      }
      for (std::size_t b = 0; b < B; ++b) {
        if (bws.alive[b]) store_lane(b, t);
      }
    }

    // ---- Epilogue: mirror the scalar wrapper for converged lanes -----
    for (std::size_t b = 0; b < B; ++b) {
      if (!bws.alive[b]) continue;
      TetaResult& res = *lanes[bws.live[b]].out;
      res.converged = true;
      res.diag.iterations = res.total_sc_iterations;
      res.diag.retries_used = 0;
      res.port_voltages.resize(res.time.size());
      obs::add_counter("teta.transients");
      obs::add_counter(
          "teta.chord_iterations",
          static_cast<std::uint64_t>(res.total_sc_iterations));
      obs::add_counter("teta.dt_halvings", 0);
    }
  }

  // Lanes the block dropped repeat their first attempt bitwise under the
  // scalar engine (same setup, same failure) and continue with its retry
  // ladder, so per-sample results and counters match scalar execution.
  for (std::size_t l = 0; l < nl; ++l) {
    if (bws.rerun[l]) {
      simulate_stage(*lanes[l].stage, *lanes[l].load, opt, *lanes[l].ws,
                     *lanes[l].out);
    }
  }
}

}  // namespace lcsf::teta
